#include "overlay/location_table.hpp"

#include <algorithm>

namespace ahsw::overlay {

void LocationTable::sort_row(std::vector<Provider>& row) {
  std::sort(row.begin(), row.end(), [](const Provider& a, const Provider& b) {
    if (a.frequency != b.frequency) return a.frequency < b.frequency;
    return a.address < b.address;
  });
}

void LocationTable::publish(chord::Key key, net::NodeAddress address,
                            std::uint32_t frequency) {
  if (frequency == 0) return;
  std::uint32_t buried = revive(key, address);
  std::vector<Provider>& row = rows_[key];
  for (Provider& p : row) {
    if (p.address == address) {
      p.frequency += frequency;
      ++p.version;
      sort_row(row);
      return;
    }
  }
  row.push_back(Provider{address, frequency, buried + 1});
  sort_row(row);
}

bool LocationTable::retract(chord::Key key, net::NodeAddress address,
                            std::uint32_t frequency) {
  auto it = rows_.find(key);
  if (it == rows_.end()) return false;
  std::vector<Provider>& row = it->second;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (row[i].address != address) continue;
    if (row[i].frequency <= frequency) {
      // Bury the version the entry died at: a stale replica snapshot can
      // only carry this version or older, so reconcile() rejects it.
      bury(key, address, row[i].version);
      row.erase(row.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      row[i].frequency -= frequency;
      ++row[i].version;
      sort_row(row);
    }
    if (row.empty()) rows_.erase(it);
    return true;
  }
  return false;
}

void LocationTable::upsert(chord::Key key, net::NodeAddress address,
                           std::uint32_t frequency) {
  if (frequency == 0) {
    purge(key, address);
    return;
  }
  std::uint32_t buried = revive(key, address);
  std::vector<Provider>& row = rows_[key];
  for (Provider& p : row) {
    if (p.address == address) {
      p.frequency = frequency;
      ++p.version;
      sort_row(row);
      return;
    }
  }
  row.push_back(Provider{address, frequency, buried + 1});
  sort_row(row);
}

void LocationTable::upsert_replica(chord::Key key, net::NodeAddress address,
                                   std::uint32_t frequency,
                                   std::uint32_t version) {
  if (frequency == 0) {
    bury(key, address, version);
    auto it = rows_.find(key);
    if (it == rows_.end()) return;
    std::vector<Provider>& row = it->second;
    auto pos = std::remove_if(row.begin(), row.end(), [&](const Provider& p) {
      return p.address == address && p.version <= version;
    });
    row.erase(pos, row.end());
    if (row.empty()) rows_.erase(it);
    return;
  }
  if (std::optional<std::uint32_t> buried = tombstone_version(key, address);
      buried.has_value()) {
    if (*buried >= version) return;  // stale push from before the burial
    (void)revive(key, address);
  }
  std::vector<Provider>& row = rows_[key];
  for (Provider& p : row) {
    if (p.address == address) {
      if (version < p.version) return;  // out-of-order push
      p.frequency = frequency;
      p.version = version;
      sort_row(row);
      return;
    }
  }
  row.push_back(Provider{address, frequency, version});
  sort_row(row);
}

void LocationTable::reconcile(
    const std::map<chord::Key, std::vector<Provider>>& rows) {
  for (const auto& [key, incoming] : rows) {
    // Locate the row lazily: when every incoming provider is rejected
    // (tombstoned or stale) no empty rows_[key] entry must churn into
    // existence just to be erased again.
    auto rit = rows_.find(key);
    bool changed = false;
    for (const Provider& in : incoming) {
      if (in.frequency == 0) continue;  // replicas never mirror empty entries
      // A deleted provider only comes back when the snapshot is strictly
      // newer than its burial (it demonstrably re-published since).
      if (std::optional<std::uint32_t> buried =
              tombstone_version(key, in.address);
          buried.has_value()) {
        if (*buried >= in.version) continue;
        (void)revive(key, in.address);
      }
      if (rit == rows_.end()) {
        rit = rows_.emplace(key, std::vector<Provider>{}).first;
      }
      bool found = false;
      for (Provider& p : rit->second) {
        if (p.address != in.address) continue;
        found = true;
        if (in.version > p.version) {
          // Newer snapshot wins outright — including a *lower* frequency
          // (the partial-retract case the old max-merge resurrected).
          p.frequency = in.frequency;
          p.version = in.version;
          changed = true;
        } else if (in.version == p.version) {
          // Same causal state from several replica holders: max keeps the
          // merge idempotent without inflating the row.
          if (in.frequency > p.frequency) {
            p.frequency = in.frequency;
            changed = true;
          }
        }
        break;
      }
      if (!found) {
        rit->second.push_back(in);
        changed = true;
      }
    }
    if (changed) sort_row(rit->second);
    if (rit != rows_.end() && rit->second.empty()) rows_.erase(rit);
  }
}

bool LocationTable::purge(chord::Key key, net::NodeAddress address) {
  auto it = rows_.find(key);
  if (it == rows_.end()) {
    // Tombstone even when the entry is already gone: the purge expresses
    // delete intent, and a stale replica push may still be in flight.
    bury(key, address, 0);
    return false;
  }
  std::vector<Provider>& row = it->second;
  std::uint32_t died_at = 0;
  auto pos = std::remove_if(row.begin(), row.end(), [&](const Provider& p) {
    if (p.address != address) return false;
    died_at = std::max(died_at, p.version);
    return true;
  });
  bool changed = pos != row.end();
  row.erase(pos, row.end());
  bury(key, address, died_at);
  if (row.empty()) rows_.erase(it);
  return changed;
}

void LocationTable::purge_everywhere(net::NodeAddress address) {
  for (auto it = rows_.begin(); it != rows_.end();) {
    std::vector<Provider>& row = it->second;
    std::uint32_t died_at = 0;
    auto pos = std::remove_if(row.begin(), row.end(),
                              [&](const Provider& p) {
                                if (p.address != address) return false;
                                died_at = std::max(died_at, p.version);
                                return true;
                              });
    if (pos != row.end()) {
      row.erase(pos, row.end());
      bury(it->first, address, died_at);
    }
    it = row.empty() ? rows_.erase(it) : std::next(it);
  }
}

std::vector<Provider> LocationTable::lookup(chord::Key key) const {
  auto it = rows_.find(key);
  if (it == rows_.end()) return {};
  return it->second;  // rows are kept sorted on mutation
}

const Provider* LocationTable::find(chord::Key key,
                                    net::NodeAddress address) const {
  auto it = rows_.find(key);
  if (it == rows_.end()) return nullptr;
  for (const Provider& p : it->second) {
    if (p.address == address) return &p;
  }
  return nullptr;
}

std::map<chord::Key, std::vector<Provider>> LocationTable::extract_range(
    chord::Key lo, chord::Key hi) {
  return extract_range_mapped(lo, hi, [](chord::Key k) { return k; });
}

std::map<chord::Key, std::vector<Provider>> LocationTable::extract_range_mapped(
    chord::Key lo, chord::Key hi,
    const std::function<chord::Key(chord::Key)>& to_ring) {
  std::map<chord::Key, std::vector<Provider>> out;
  for (auto it = rows_.begin(); it != rows_.end();) {
    if (chord::in_open_closed(to_ring(it->first), lo, hi)) {
      out.emplace(it->first, std::move(it->second));
      it = rows_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

void LocationTable::absorb(
    const std::map<chord::Key, std::vector<Provider>>& rows) {
  for (const auto& [key, providers] : rows) {
    for (const Provider& in : providers) {
      if (in.frequency == 0) continue;
      // Preserve incoming versions: resetting a transferred entry to
      // version 1 would let that owner's replica mirrors (still carrying
      // the higher pre-transfer version) overwrite later mutations — the
      // resurrection bug reintroduced through ownership transfer.
      std::uint32_t buried = revive(key, in.address);
      std::vector<Provider>& row = rows_[key];
      bool found = false;
      for (Provider& p : row) {
        if (p.address != in.address) continue;
        p.frequency += in.frequency;
        p.version = std::max(p.version, in.version) + 1;
        found = true;
        break;
      }
      if (!found) {
        row.push_back(
            Provider{in.address, in.frequency, std::max(in.version, buried + 1)});
      }
      sort_row(row);
    }
  }
}

std::size_t LocationTable::entry_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [key, row] : rows_) n += row.size();
  return n;
}

std::size_t LocationTable::byte_size() const noexcept {
  std::size_t n = 8;
  for (const auto& [key, row] : rows_) n += 8 + 12 * row.size();
  return n;
}

}  // namespace ahsw::overlay
