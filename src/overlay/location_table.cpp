#include "overlay/location_table.hpp"

#include <algorithm>

namespace ahsw::overlay {

void LocationTable::publish(chord::Key key, net::NodeAddress address,
                            std::uint32_t frequency) {
  if (frequency == 0) return;
  revive(key, address);
  std::vector<Provider>& row = rows_[key];
  for (Provider& p : row) {
    if (p.address == address) {
      p.frequency += frequency;
      return;
    }
  }
  row.push_back(Provider{address, frequency});
}

bool LocationTable::retract(chord::Key key, net::NodeAddress address,
                            std::uint32_t frequency) {
  auto it = rows_.find(key);
  if (it == rows_.end()) return false;
  std::vector<Provider>& row = it->second;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (row[i].address != address) continue;
    if (row[i].frequency <= frequency) {
      row.erase(row.begin() + static_cast<std::ptrdiff_t>(i));
      bury(key, address);  // block stale replica pushes from resurrecting
    } else {
      row[i].frequency -= frequency;
    }
    if (row.empty()) rows_.erase(it);
    return true;
  }
  return false;
}

void LocationTable::upsert(chord::Key key, net::NodeAddress address,
                           std::uint32_t frequency) {
  if (frequency == 0) {
    purge(key, address);
    return;
  }
  revive(key, address);
  std::vector<Provider>& row = rows_[key];
  for (Provider& p : row) {
    if (p.address == address) {
      p.frequency = frequency;
      return;
    }
  }
  row.push_back(Provider{address, frequency});
}

void LocationTable::reconcile(
    const std::map<chord::Key, std::vector<Provider>>& rows) {
  for (const auto& [key, incoming] : rows) {
    std::vector<Provider>& row = rows_[key];
    for (const Provider& in : incoming) {
      // A just-deleted provider must not come back from a stale replica.
      if (tombstoned(key, in.address)) continue;
      bool found = false;
      for (Provider& p : row) {
        if (p.address == in.address) {
          p.frequency = std::max(p.frequency, in.frequency);
          found = true;
          break;
        }
      }
      if (!found) row.push_back(in);
    }
    if (row.empty()) rows_.erase(key);
  }
}

bool LocationTable::purge(chord::Key key, net::NodeAddress address) {
  // Tombstone even when the entry is already gone: the purge expresses
  // delete intent, and a stale replica push may still be in flight.
  bury(key, address);
  auto it = rows_.find(key);
  if (it == rows_.end()) return false;
  std::vector<Provider>& row = it->second;
  auto pos = std::remove_if(row.begin(), row.end(), [&](const Provider& p) {
    return p.address == address;
  });
  bool changed = pos != row.end();
  row.erase(pos, row.end());
  if (row.empty()) rows_.erase(it);
  return changed;
}

void LocationTable::purge_everywhere(net::NodeAddress address) {
  for (auto it = rows_.begin(); it != rows_.end();) {
    std::vector<Provider>& row = it->second;
    auto pos = std::remove_if(row.begin(), row.end(),
                              [&](const Provider& p) {
                                return p.address == address;
                              });
    if (pos != row.end()) {
      row.erase(pos, row.end());
      bury(it->first, address);
    }
    it = row.empty() ? rows_.erase(it) : std::next(it);
  }
}

std::vector<Provider> LocationTable::lookup(chord::Key key) const {
  auto it = rows_.find(key);
  if (it == rows_.end()) return {};
  std::vector<Provider> out = it->second;
  std::sort(out.begin(), out.end(), [](const Provider& a, const Provider& b) {
    if (a.frequency != b.frequency) return a.frequency < b.frequency;
    return a.address < b.address;
  });
  return out;
}

std::map<chord::Key, std::vector<Provider>> LocationTable::extract_range(
    chord::Key lo, chord::Key hi) {
  return extract_range_mapped(lo, hi, [](chord::Key k) { return k; });
}

std::map<chord::Key, std::vector<Provider>> LocationTable::extract_range_mapped(
    chord::Key lo, chord::Key hi,
    const std::function<chord::Key(chord::Key)>& to_ring) {
  std::map<chord::Key, std::vector<Provider>> out;
  for (auto it = rows_.begin(); it != rows_.end();) {
    if (chord::in_open_closed(to_ring(it->first), lo, hi)) {
      out.emplace(it->first, std::move(it->second));
      it = rows_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

void LocationTable::absorb(
    const std::map<chord::Key, std::vector<Provider>>& rows) {
  for (const auto& [key, providers] : rows) {
    for (const Provider& p : providers) {
      publish(key, p.address, p.frequency);
    }
  }
}

std::size_t LocationTable::entry_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [key, row] : rows_) n += row.size();
  return n;
}

std::size_t LocationTable::byte_size() const noexcept {
  std::size_t n = 8;
  for (const auto& [key, row] : rows_) n += 8 + 12 * row.size();
  return n;
}

}  // namespace ahsw::overlay
