// The six-key distributed index scheme (Sect. III-B).
//
// RDFPeers hashes s, p and o of every triple (three keys); the paper extends
// this to six keys per triple — s, p, o, (s,p), (p,o), (s,o) — so that every
// bound-position combination of a triple pattern maps to exactly one DHT
// key. This header computes those keys and selects the most selective key
// kind available for a given pattern.
#pragma once

#include <array>
#include <optional>
#include <string>

#include "chord/ring.hpp"
#include "rdf/triple.hpp"

namespace ahsw::overlay {

enum class IndexKeyKind : std::uint8_t {
  kS = 0,   // subject
  kP = 1,   // predicate
  kO = 2,   // object
  kSP = 3,  // subject + predicate
  kPO = 4,  // predicate + object
  kSO = 5,  // subject + object
};
inline constexpr int kIndexKeyKinds = 6;

[[nodiscard]] std::string_view index_key_kind_name(IndexKeyKind k) noexcept;

/// DHT key for a single-attribute index entry.
[[nodiscard]] chord::Key index_key(IndexKeyKind kind, const rdf::Term& a);

/// DHT key for a two-attribute index entry (kSP / kPO / kSO). The argument
/// order is (s,p), (p,o), (s,o) respectively.
[[nodiscard]] chord::Key index_key(IndexKeyKind kind, const rdf::Term& a,
                                   const rdf::Term& b);

/// The six index keys of one triple, in IndexKeyKind order.
[[nodiscard]] std::array<chord::Key, kIndexKeyKinds> index_keys(
    const rdf::Triple& t);

/// The key a triple pattern should be looked up under, chosen from the
/// bound positions: (s,p,·)->SP, (·,p,o)->PO, (s,·,o)->SO, (s,·,·)->S,
/// (·,p,·)->P, (·,·,o)->O. A fully bound pattern uses SP. Returns nullopt
/// for the fully unbound pattern (?s,?p,?o), which cannot use the index and
/// must be broadcast to all storage nodes.
struct PatternKey {
  IndexKeyKind kind;
  chord::Key key;
};
[[nodiscard]] std::optional<PatternKey> key_for_pattern(
    const rdf::TriplePattern& p);

}  // namespace ahsw::overlay
