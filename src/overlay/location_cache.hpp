// Initiator-side cache of location-table rows, with workload-adaptive
// leases for hot rows (the PHD-Store idea — move data placement toward the
// nodes that query it — recast onto the six-key index: a *leased* cached
// row is an extra replica pinned at the initiator that hammers it, kept
// coherent by owner-pushed invalidations instead of a TTL).
//
// Semantics:
//   - A cached row serves `lookup` until its TTL expires, it is invalidated
//     by a dead-provider timeout / retry exhaustion (the executor's
//     give-up path), or the owner pushes an invalidation (leased rows).
//   - Per-key access counts persist across invalidations; once a key has
//     been looked up `hot_threshold` times from this initiator, its next
//     insert is *leased*: the overlay subscribes the initiator at the row
//     owner, the owner pushes invalidations on every row mutation, and the
//     row earns the longer `hot_ttl_ms` because staleness is now bounded by
//     the push, not the clock.
//   - Unleased rows may serve data up to `ttl_ms` stale — the documented
//     staleness bound the auditor checks cached rows against (I3); leased
//     rows must match the authoritative row exactly (I4).
//
// Determinism: state depends only on the (time, query, task)-ordered
// execution history — no wall clock, no randomness — so batch replay with
// caching on stays byte-identical.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "chord/ring.hpp"
#include "net/network.hpp"
#include "overlay/location_table.hpp"

namespace ahsw::overlay {

struct CacheConfig {
  bool enabled = false;
  /// How long an unleased cached row may serve lookups — the staleness
  /// bound for rows the owner does not push invalidations to.
  double ttl_ms = 400.0;
  /// Lookups of one key from one initiator before its rows are leased.
  std::uint32_t hot_threshold = 4;
  /// TTL for leased rows (coherence comes from owner pushes, so the clock
  /// bound only reclaims space).
  double hot_ttl_ms = 4000.0;
  /// Per-initiator row capacity; the earliest-expiring row is evicted.
  std::size_t max_rows = 64;
  /// Wire size of one owner-pushed invalidation (key + epoch).
  std::size_t invalidation_bytes = 16;

  friend bool operator==(const CacheConfig&, const CacheConfig&) = default;
};

/// Cache effectiveness counters. Mutated only inside LocationCache (the
/// accounting layer for cache events — ahsw-lint rule A2 enforces this);
/// consumers read snapshots and diff them with delta_since, mirroring
/// net::TrafficStats.
struct CacheStats {
  std::uint64_t hits = 0;           // lookups served from cache (zero traffic)
  std::uint64_t misses = 0;         // lookups that fell through to the ring
  std::uint64_t invalidations = 0;  // rows dropped by timeout/owner push
  std::uint64_t expirations = 0;    // rows dropped by TTL at lookup time
  std::uint64_t insertions = 0;     // rows cached after a miss
  std::uint64_t leases = 0;         // insertions that became leased (hot)

  void accumulate(const CacheStats& d) noexcept;
  [[nodiscard]] CacheStats delta_since(const CacheStats& before) const noexcept;
};

/// One cached location-table row.
struct CachedRow {
  std::vector<Provider> providers;  // ascending frequency (lookup order)
  chord::Key index_node = 0;        // owner that served the row
  net::SimTime inserted_at = 0;     // snapshot time (drives staleness age)
  net::SimTime expires_at = 0;      // TTL horizon
  bool leased = false;              // owner pushes invalidations to us
};

/// The per-initiator cache. Owned by HybridOverlay (one per initiator
/// address, created on first use); the DAG executor consults it before
/// issuing a ring lookup and invalidates on dead-provider give-up.
class LocationCache {
 public:
  explicit LocationCache(CacheConfig config = {}) : config_(config) {}

  /// The cached row for `key` if present and fresh at `now`; counts a hit.
  /// An expired row is dropped (counted as expiration) and, like an absent
  /// row, counts a miss. Every call bumps the key's access count — the
  /// workload signal that drives leasing.
  [[nodiscard]] const CachedRow* lookup(chord::Key key, net::SimTime now);

  /// Cache a row snapshot fetched at `now`. Returns true when the row was
  /// leased (the caller must subscribe the initiator at the row owner).
  bool insert(chord::Key key, std::vector<Provider> providers,
              chord::Key index_node, net::SimTime now);

  /// Drop one cached row (dead-provider timeout, retry exhaustion, or an
  /// owner-pushed invalidation). Returns true if the row was present.
  bool invalidate(chord::Key key);

  /// Drop every cached row listing `address` (bulk convergence cleanup).
  /// Returns the number of rows dropped.
  std::size_t invalidate_provider(net::NodeAddress address);

  /// Drop everything silently (reconfiguration; not counted as
  /// invalidations since nothing observable was served stale).
  void clear();

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }
  [[nodiscard]] const std::map<chord::Key, CachedRow>& rows() const noexcept {
    return rows_;
  }
  [[nodiscard]] std::uint32_t access_count(chord::Key key) const {
    auto it = accesses_.find(key);
    return it == accesses_.end() ? 0u : it->second;
  }

 private:
  void evict_for_capacity();

  CacheConfig config_;
  CacheStats stats_;
  std::map<chord::Key, CachedRow> rows_;
  /// Per-key lookup counts from this initiator. Persist across
  /// invalidations and evictions: heat is a property of the workload, not
  /// of one cached copy.
  std::map<chord::Key, std::uint32_t> accesses_;
};

}  // namespace ahsw::overlay
