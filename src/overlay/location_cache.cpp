#include "overlay/location_cache.hpp"

#include <utility>

namespace ahsw::overlay {

void CacheStats::accumulate(const CacheStats& d) noexcept {
  hits += d.hits;
  misses += d.misses;
  invalidations += d.invalidations;
  expirations += d.expirations;
  insertions += d.insertions;
  leases += d.leases;
}

CacheStats CacheStats::delta_since(const CacheStats& before) const noexcept {
  CacheStats d;
  d.hits = hits - before.hits;
  d.misses = misses - before.misses;
  d.invalidations = invalidations - before.invalidations;
  d.expirations = expirations - before.expirations;
  d.insertions = insertions - before.insertions;
  d.leases = leases - before.leases;
  return d;
}

const CachedRow* LocationCache::lookup(chord::Key key, net::SimTime now) {
  ++accesses_[key];
  auto it = rows_.find(key);
  if (it == rows_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (now >= it->second.expires_at) {
    rows_.erase(it);
    ++stats_.expirations;
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return &it->second;
}

bool LocationCache::insert(chord::Key key, std::vector<Provider> providers,
                           chord::Key index_node, net::SimTime now) {
  CachedRow row;
  row.providers = std::move(providers);
  row.index_node = index_node;
  row.inserted_at = now;
  row.leased = access_count(key) >= config_.hot_threshold;
  row.expires_at = now + (row.leased ? config_.hot_ttl_ms : config_.ttl_ms);
  bool leased = row.leased;
  auto [it, fresh] = rows_.insert_or_assign(key, std::move(row));
  (void)it;
  if (fresh) evict_for_capacity();
  ++stats_.insertions;
  if (leased) ++stats_.leases;
  return leased;
}

bool LocationCache::invalidate(chord::Key key) {
  if (rows_.erase(key) == 0) return false;
  ++stats_.invalidations;
  return true;
}

std::size_t LocationCache::invalidate_provider(net::NodeAddress address) {
  std::size_t dropped = 0;
  for (auto it = rows_.begin(); it != rows_.end();) {
    bool lists = false;
    for (const Provider& p : it->second.providers) {
      if (p.address == address) {
        lists = true;
        break;
      }
    }
    if (lists) {
      it = rows_.erase(it);
      ++stats_.invalidations;
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

void LocationCache::clear() { rows_.clear(); }

void LocationCache::evict_for_capacity() {
  while (rows_.size() > config_.max_rows) {
    // Deterministic victim: earliest expiry, ties by key order. No LRU
    // clocks, no randomness — replay must reproduce the same evictions.
    auto victim = rows_.begin();
    for (auto it = std::next(rows_.begin()); it != rows_.end(); ++it) {
      if (it->second.expires_at < victim->second.expires_at) victim = it;
    }
    rows_.erase(victim);
  }
}

}  // namespace ahsw::overlay
