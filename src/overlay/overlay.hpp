// The hybrid P2P overlay (Sect. III): index nodes on a Chord ring, storage
// nodes attached to index nodes, and the two-level distributed index that
// maps a triple-pattern key to the storage nodes providing matching triples.
//
// Level 1: Chord maps Hash(attributes) -> the index node owning that key.
// Level 2: that index node's location table maps the key -> providers with
// frequencies (Table I).
//
// Data never leaves its provider: storage nodes publish only (key, address,
// frequency) entries — the paper's core departure from RDFPeers.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "chord/ring.hpp"
#include "common/rng.hpp"
#include "net/network.hpp"
#include "obs/trace.hpp"
#include "overlay/keys.hpp"
#include "overlay/location_cache.hpp"
#include "overlay/location_table.hpp"
#include "rdf/store.hpp"

namespace ahsw::overlay {

struct OverlayConfig {
  chord::RingConfig ring;
  /// Copies of every location-table row: 1 = primary only (no fault
  /// tolerance), k = primary + (k-1) ring successors (Sect. III-D).
  int replication_factor = 1;
  /// Seed for identifier generation.
  std::uint64_t seed = 0x5eed;
  /// The paper's six-key scheme (S, P, O, SP, PO, SO). Setting this to
  /// false publishes only the three RDFPeers-style single-attribute keys;
  /// two-attribute patterns then locate through their most selective single
  /// attribute and over-approximate the provider set (ablation of the
  /// design choice in Sect. III-B).
  bool pair_keys = true;
  /// Forward the lazy purge of a dead provider to the owner's replica
  /// successors. With only the primary row purged, a later crash of the
  /// primary promotes a replica row that still lists the dead provider
  /// (resurrection through replicas). False reproduces the pre-fix
  /// behavior, kept for the regression test.
  bool propagate_purge_to_replicas = true;
};

/// An index node: a ring member hosting a location-table shard.
struct IndexNodeState {
  chord::Key id = 0;
  net::NodeAddress address = net::kNoAddress;
  LocationTable table;     // rows this node owns (primary)
  LocationTable replicas;  // rows replicated from ring predecessors
};

/// A storage node: keeps its own triples, attaches to one index node.
struct StorageNodeState {
  net::NodeAddress address = net::kNoAddress;
  chord::Key attached_index = 0;
  rdf::TripleStore store;
  /// Keys this node has published, with frequencies (for retraction on
  /// departure and republication after index-layer data loss).
  std::map<chord::Key, std::uint32_t> published;
  /// Relative capacity, the QoS attribute consumed by the third-site join
  /// strategy (Ye et al.; Sect. II of the paper).
  double capacity = 1.0;
};

class HybridOverlay {
 public:
  explicit HybridOverlay(net::Network& network, OverlayConfig config = {});

  /// Deep-copy this overlay onto `network` (a worker-local copy of the
  /// master network). The clone carries the full ring, index, storage and
  /// cache state; its ring transfer hook is re-pointed at the clone and any
  /// attached trace is dropped (the parallel driver re-attaches a
  /// shard-private trace for traced batches). Heap-allocated
  /// so the rebound hook's captured pointer stays stable. The parallel
  /// batch driver gives each worker one clone; the master instance is never
  /// mutated by worker execution.
  [[nodiscard]] std::unique_ptr<HybridOverlay> clone_for_worker(
      net::Network& network) const;

  // -- membership ---------------------------------------------------------

  /// Add an index node with a pseudo-random identifier.
  chord::Key add_index_node(net::SimTime now = 0);
  /// Add an index node with an explicit ring identifier (paper topology
  /// tests use the Fig. 1 ids in a 4-bit space).
  chord::Key add_index_node_with_id(chord::Key id, net::SimTime now = 0);

  /// Add a storage node attached round-robin to a live index node.
  net::NodeAddress add_storage_node();
  /// Add a storage node attached to a specific index node.
  net::NodeAddress add_storage_node_attached(chord::Key index_id);

  /// Graceful index-node departure: the successor inherits the location
  /// table (Sect. III-D).
  void index_node_leave(chord::Key id, net::SimTime now);
  /// Crash an index node (no notification; replicas mask the loss).
  void index_node_fail(chord::Key id);
  /// Crash a storage node; location tables stay stale until lazy repair.
  void storage_node_fail(net::NodeAddress addr);
  /// Graceful storage departure: retract every published entry.
  net::SimTime storage_node_leave(net::NodeAddress addr, net::SimTime now);
  /// A crashed-and-recovered storage node re-announces itself: every
  /// remembered published entry is re-pushed as a snapshot, which also
  /// clears any tombstone the lazy repair buried it under. The caller must
  /// have recovered the node in the network first. Returns the completion
  /// time of the slowest republish.
  net::SimTime storage_node_rejoin(net::NodeAddress addr, net::SimTime now);

  /// Ring repair + promotion of replica rows to their new owners.
  void repair(net::SimTime now);
  /// Oracle-driven anti-entropy: drop every currently-failed storage address
  /// from every primary and replica row (tombstoning it, as the lazy purge
  /// would). Lazy repair only cleans rows queries actually hit; the fault
  /// harness runs this as its convergence step so post-convergence audits
  /// (invariant I6) have a precise precondition. Charges no traffic — it
  /// models the eventual outcome of repair, not a protocol.
  void purge_failed_everywhere();
  /// Have every live storage node republish its index entries (the lazy
  /// fallback when replication is off and index state was lost).
  net::SimTime republish_all(net::SimTime now);

  // -- data ----------------------------------------------------------------

  /// Insert triples at a storage node and publish the six index keys per
  /// triple (aggregated per key). Returns the completion time.
  net::SimTime share_triples(net::NodeAddress addr,
                             const std::vector<rdf::Triple>& triples,
                             net::SimTime now);
  /// Remove triples and retract the matching index entries.
  net::SimTime unshare_triples(net::NodeAddress addr,
                               const std::vector<rdf::Triple>& triples,
                               net::SimTime now);

  // -- query support --------------------------------------------------------

  struct Located {
    std::vector<Provider> providers;  // ascending frequency
    chord::Key index_node = 0;        // owner that served the row
    int hops = 0;                     // ring routing hops
    bool broadcast = false;           // fully unbound pattern: flood instead
    bool ok = false;
    net::SimTime completed_at = 0;
    /// Served from the initiator's LocationCache (zero index traffic); the
    /// age makes the frequency snapshot's staleness auditable downstream
    /// (the planner notes it, the auditor bounds it).
    bool cached = false;
    net::SimTime snapshot_age_ms = 0;
  };

  /// Resolve the providers of a triple pattern through the two-level index
  /// (Fig. 2): requester -> its index node -> ring lookup -> owner's
  /// location table -> provider list back to the requester. For the fully
  /// unbound pattern, sets `broadcast` and lists all live storage nodes.
  Located locate(net::NodeAddress requester, const rdf::TriplePattern& p,
                 net::SimTime now);

  /// Lazy location-table repair (Sect. III-D): after a query timeout on
  /// `dead`, the reporter tells the owning index node to drop its entries.
  net::SimTime report_dead_provider(net::NodeAddress reporter,
                                    const rdf::TriplePattern& p,
                                    net::NodeAddress dead, net::SimTime now);

  // -- location-row caching (docs/caching.md) ------------------------------

  /// Install the cache configuration for every initiator-side cache.
  /// Clears existing caches and lease subscriptions (a config change resets
  /// the world; not counted as invalidations).
  void configure_caches(const CacheConfig& config);
  [[nodiscard]] const CacheConfig& cache_config() const noexcept {
    return cache_config_;
  }
  /// The initiator's location-row cache, created on first use with the
  /// installed config. Deterministic: keyed by address only.
  [[nodiscard]] LocationCache& cache_for(net::NodeAddress initiator);
  [[nodiscard]] const std::map<net::NodeAddress, LocationCache>& caches()
      const noexcept {
    return caches_;
  }
  /// Register `initiator` for owner-pushed invalidations of `key`'s row —
  /// the lease behind hot-row extra-replication. One-shot: the subscription
  /// is consumed by the first push (the row is gone from the cache, so the
  /// next miss re-fetches and re-subscribes). Registration itself is free:
  /// it rides the lookup response that delivered the row.
  void subscribe_invalidations(chord::Key key, net::NodeAddress initiator);
  /// Cache counters summed across every initiator.
  [[nodiscard]] CacheStats cache_stats_total() const;

  /// Attach the trace that locate()/report_dead_provider() record
  /// index-lookup and repair spans into; forwarded to the ring so lookups
  /// nest ring-route spans inside (nullptr detaches).
  void set_trace(obs::QueryTrace* trace) noexcept {
    trace_ = trace;
    ring_.set_trace(trace);
  }

  // -- accessors ----------------------------------------------------------------

  [[nodiscard]] rdf::TripleStore& store_of(net::NodeAddress addr) {
    return storage_.at(addr).store;
  }
  [[nodiscard]] const rdf::TripleStore& store_of(net::NodeAddress addr) const {
    return storage_.at(addr).store;
  }
  [[nodiscard]] StorageNodeState& storage_state(net::NodeAddress addr) {
    return storage_.at(addr);
  }
  [[nodiscard]] const std::map<chord::Key, IndexNodeState>& index_nodes()
      const noexcept {
    return index_;
  }
  /// Mutable index-node state: a fault-injection hook for the invariant
  /// auditor's seeded-corruption tests (tests/check). Production code
  /// routes every mutation through publish/retract/transfer/repair.
  [[nodiscard]] IndexNodeState& index_state(chord::Key id) {
    return index_.at(id);
  }
  [[nodiscard]] const std::map<net::NodeAddress, StorageNodeState>&
  storage_nodes() const noexcept {
    return storage_;
  }
  [[nodiscard]] bool is_storage_node(net::NodeAddress addr) const {
    return storage_.count(addr) > 0;
  }
  /// Live storage-node addresses, ascending.
  [[nodiscard]] std::vector<net::NodeAddress> live_storage_addresses() const;

  [[nodiscard]] net::Network& network() noexcept { return *net_; }
  [[nodiscard]] const net::Network& network() const noexcept { return *net_; }
  [[nodiscard]] chord::Ring& ring() noexcept { return ring_; }
  [[nodiscard]] const chord::Ring& ring() const noexcept { return ring_; }
  [[nodiscard]] const OverlayConfig& config() const noexcept {
    return config_;
  }

  /// The ring node that fields DHT requests for `requester`: itself for an
  /// index node, the attached index node for a storage node (re-attaching
  /// to a live one first if the old attachment died).
  [[nodiscard]] chord::Key entry_ring_node(net::NodeAddress requester);

  /// A merged store containing every live storage node's triples — the
  /// single-site oracle distributed execution is validated against.
  [[nodiscard]] rdf::TripleStore merged_store() const;

  /// The location-table row key a pattern resolves through, honoring the
  /// pair_keys ablation (nullopt for the fully unbound pattern). Public so
  /// the executor's cache path and the auditor can address cached rows by
  /// the same key locate() resolves.
  [[nodiscard]] std::optional<chord::Key> row_key(
      const rdf::TriplePattern& p) const;

 private:
  /// How publish_key applies a delivered (key, provider, freq) entry.
  enum class PublishOp : std::uint8_t {
    kAdd,       // additive publish (new triples shared)
    kRetract,   // subtract freq, remove at zero (unshare / leave)
    kSnapshot,  // set freq exactly; idempotent, revives tombstones (rejoin)
  };

  /// Deliver one publish/retract/snapshot to the owning index node
  /// (+ replicas).
  net::SimTime publish_key(net::NodeAddress from, chord::Key key,
                           std::uint32_t freq, PublishOp op, net::SimTime now);
  /// Push a snapshot of the owner's current (key, provider) entry to the
  /// owner's replica successors (idempotent; 0 removes the replica entry).
  void replicate_row(IndexNodeState& owner, chord::Key key,
                     net::NodeAddress provider, net::SimTime now);
  void on_transfer(chord::Key old_owner, chord::Key new_owner, chord::Key lo,
                   chord::Key hi, net::SimTime when);
  /// Push the owner's invalidation of `key` to every lease subscriber
  /// (consuming the subscriptions). `charge` bills one invalidation message
  /// per subscriber as `index` traffic from `owner_addr`; oracle paths
  /// (converge-time cleanup) pass false.
  void push_invalidations(chord::Key key, net::NodeAddress owner_addr,
                          net::SimTime now, bool charge);

  net::Network* net_;
  OverlayConfig config_;
  chord::Ring ring_;
  std::map<chord::Key, IndexNodeState> index_;
  /// Reverse index address -> ring id, maintained alongside index_: the
  /// per-request entry_ring_node path must not scan O(ring) states.
  std::map<net::NodeAddress, chord::Key> index_by_address_;
  std::map<net::NodeAddress, StorageNodeState> storage_;
  common::Rng id_rng_;
  std::size_t attach_counter_ = 0;
  obs::QueryTrace* trace_ = nullptr;
  CacheConfig cache_config_;
  std::map<net::NodeAddress, LocationCache> caches_;
  /// Lease subscriptions: row key -> initiators to notify on mutation.
  std::map<chord::Key, std::set<net::NodeAddress>> cache_subscribers_;
};

}  // namespace ahsw::overlay
