// The location table of an index node (Sect. III-B, Table I).
//
// Each row maps a key K_i (the hash of one or two triple attributes) to the
// list of storage nodes sharing triples with that attribute value, together
// with a frequency: how many of that node's triples share the hash. The
// frequency is the statistic the paper's optimizations consume (chain
// ordering in Sect. IV-C, join ordering / site selection in Sect. IV-D).
//
// Storage is a sorted flat vector of rows (and a sorted flat tombstone
// vector) rather than the former std::map-of-maps: 1k-node rings hold
// thousands of rows per index node, and the batch driver hits them on every
// lookup, so binary search over contiguous rows beats pointer-chasing tree
// nodes, and bulk walks (repair, purge_everywhere, byte accounting) become
// linear scans. Iteration order stays ascending-by-key — the same
// deterministic order the map gave — and erased rows park their provider
// capacity in a pool so repair/churn loops stop thrashing the allocator.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "chord/ring.hpp"
#include "common/pool.hpp"
#include "net/network.hpp"

namespace ahsw::overlay {

/// One storage node entry of a location-table row.
///
/// `version` is a per-(key, provider) monotonic counter maintained by the
/// row *owner*: every owner-side mutation (publish, retract, upsert) bumps
/// it, and a full removal buries it in the tombstone. Replicas mirror the
/// owner's version verbatim, so recovery reconciliation can order snapshots
/// causally instead of max-merging frequencies — a stale replica snapshot
/// (older version) can never overwrite a newer, lower frequency. The
/// version rides inside the entry's existing 12-byte wire envelope
/// (packed with the frequency), so no byte-accounting formula changes.
struct Provider {
  net::NodeAddress address = net::kNoAddress;
  std::uint32_t frequency = 0;  // matching triples at that node
  std::uint32_t version = 0;    // owner-bumped per-entry mutation counter

  friend bool operator==(const Provider&, const Provider&) = default;
};

/// One location-table row: a key and its provider list (sorted by
/// ascending frequency, ties by address).
struct Row {
  chord::Key key = 0;
  std::vector<Provider> providers;

  friend bool operator==(const Row&, const Row&) = default;
};

/// A detached set of rows (slice transfers, replica snapshots), sorted by
/// ascending key.
using RowSnapshot = std::vector<Row>;

class LocationTable {
 public:
  /// Add `frequency` matching triples for (key, address); merges with an
  /// existing entry for the same provider. Owner-side: bumps the entry
  /// version past any buried tombstone version.
  void publish(chord::Key key, net::NodeAddress address,
               std::uint32_t frequency);

  /// Decrease the frequency for (key, address) by `frequency`; removes the
  /// entry at zero (burying its version). Returns true if something changed.
  bool retract(chord::Key key, net::NodeAddress address,
               std::uint32_t frequency);

  /// Set the frequency for (key, address) to exactly `frequency`
  /// (snapshot semantics: used by storage-node rejoin, where repeated
  /// writes must be idempotent). frequency == 0 removes the entry.
  /// Owner-side: bumps the version like every owner mutation.
  void upsert(chord::Key key, net::NodeAddress address,
              std::uint32_t frequency);

  /// Mirror the owner's (frequency, version) for (key, address) verbatim —
  /// the replica-maintenance write path. Takes effect only when `version`
  /// is at least as new as what this table holds (entry or tombstone), so
  /// reordered or repeated pushes are harmless. frequency == 0 removes the
  /// entry and buries `version`.
  void upsert_replica(chord::Key key, net::NodeAddress address,
                      std::uint32_t frequency, std::uint32_t version);

  /// Merge a snapshot of rows, taking the *newer version* per provider
  /// (recovery merge: several replica holders may push the same row without
  /// inflating it; equal versions merge by max frequency, so the merge stays
  /// idempotent). A provider this table has deleted from a row (retract to
  /// zero, purge, upsert(0)) is tombstoned together with its last version;
  /// an incoming entry resurrects it only when its version is strictly newer
  /// than the burial — i.e. the provider demonstrably re-published since.
  /// This closes the old at-least-once window where a *partial* retract
  /// (which only lowers the frequency) could be undone by a stale replica
  /// snapshot max-merging the old, higher frequency back in.
  void reconcile(const RowSnapshot& rows);

  /// Drop a provider from one row entirely (lazy repair after a storage
  /// node failure, Sect. III-D). Returns true if it was present.
  bool purge(chord::Key key, net::NodeAddress address);

  /// Drop a provider from every row (bulk repair).
  void purge_everywhere(net::NodeAddress address);

  /// Providers for a key; empty if unknown. Sorted by ascending frequency
  /// (the order the further-optimized chain strategy wants), ties by
  /// address for determinism. Rows are kept sorted on mutation, so this is
  /// a plain copy — hot-key lookups no longer pay O(n log n) per call.
  [[nodiscard]] std::vector<Provider> lookup(chord::Key key) const;

  /// One row entry, or nullptr when absent (no copy; used by replica
  /// maintenance to read the owner's authoritative frequency + version).
  [[nodiscard]] const Provider* find(chord::Key key,
                                     net::NodeAddress address) const;

  /// The full row for a key, or nullptr when absent (no copy).
  [[nodiscard]] const Row* find_row(chord::Key key) const;

  /// Remove and return all rows with key in (lo, hi] on the ring — the
  /// slice handed to a joining index node (Sect. III-C). Sorted by key.
  [[nodiscard]] RowSnapshot extract_range(chord::Key lo, chord::Key hi);

  /// Same, but ring position is `to_ring(key)` instead of the key itself.
  /// Rows are keyed by the full hash Kj (so distinct keys never merge), while
  /// ownership lives in the m-bit ring space; this mapping bridges the two.
  [[nodiscard]] RowSnapshot extract_range_mapped(
      chord::Key lo, chord::Key hi,
      const std::function<chord::Key(chord::Key)>& to_ring);

  /// Merge rows (from a slice transfer or replica activation). Versions are
  /// preserved: an entry new to this table keeps the incoming version (so a
  /// transferred row stays ahead of its replica mirrors), a merged entry
  /// adds frequencies and advances past both versions.
  void absorb(const RowSnapshot& rows);

  /// Remove one row entirely.
  void erase_row(chord::Key key);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t entry_count() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return rows_.empty(); }

  /// Serialized provider entry: address (8) + frequency (4) + version (4).
  static constexpr std::size_t kProviderBytes = 16;
  /// Serialized tombstone: key (8) + address (8) + buried version (4).
  static constexpr std::size_t kTombstoneBytes = 20;

  /// Serialized size (for charging slice transfers / replication traffic):
  /// table framing + per-row key + full provider entries + tombstones.
  [[nodiscard]] std::size_t byte_size() const noexcept;
  /// Serialized size of one provider list response. Entries carry their
  /// version (the initiator-side cache needs it to refuse stale rows), so
  /// the response charges kProviderBytes per provider as well.
  [[nodiscard]] static std::size_t response_bytes(std::size_t providers) {
    return 16 + kProviderBytes * providers;
  }

  /// All rows, ascending by key (the map-era iteration order, pinned by
  /// tests — audits and repair walk this directly).
  [[nodiscard]] const std::vector<Row>& rows() const noexcept { return rows_; }

  /// True if (key, address) was deleted here and not re-published since —
  /// reconcile() refuses to resurrect such entries with stale versions.
  [[nodiscard]] bool tombstoned(chord::Key key, net::NodeAddress address) const;

  /// The version buried with a tombstoned (key, address), if any.
  [[nodiscard]] std::optional<std::uint32_t> tombstone_version(
      chord::Key key, net::NodeAddress address) const;

 private:
  /// Deleted (key, provider) pair awaiting re-publication, with the version
  /// it died at. Tombstones stay local: they do not travel with
  /// extract_range slices, so a new owner has a short resurrection window
  /// until the next purge — the documented at-least-once behavior of
  /// recovery reconciliation.
  struct Tombstone {
    chord::Key key = 0;
    net::NodeAddress address = net::kNoAddress;
    std::uint32_t version = 0;
  };

  /// Index of `key` in rows_, or npos. Binary search over the sorted rows.
  [[nodiscard]] std::size_t row_index(chord::Key key) const noexcept;
  /// Index of `key`, inserting an empty row (pool-backed) when absent.
  [[nodiscard]] std::size_t row_index_or_insert(chord::Key key);
  /// Erase rows_[i], parking its provider capacity in the pool.
  void erase_row_at(std::size_t i);

  void bury(chord::Key key, net::NodeAddress address, std::uint32_t version);
  /// Clear the tombstone; returns the buried version (0 when none) so the
  /// reviving entry can start strictly past it.
  std::uint32_t revive(chord::Key key, net::NodeAddress address);

  /// Restore the (frequency asc, address asc) row invariant after a
  /// mutation — the deterministic order lookup() and the chain strategies
  /// consume.
  static void sort_row(std::vector<Provider>& row);

  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  std::vector<Row> rows_;             // sorted by key
  std::vector<Tombstone> tombstones_;  // sorted by (key, address)
  common::VectorPool<Provider> spare_;  // capacity recycled across row churn
};

}  // namespace ahsw::overlay
