// The location table of an index node (Sect. III-B, Table I).
//
// Each row maps a key K_i (the hash of one or two triple attributes) to the
// list of storage nodes sharing triples with that attribute value, together
// with a frequency: how many of that node's triples share the hash. The
// frequency is the statistic the paper's optimizations consume (chain
// ordering in Sect. IV-C, join ordering / site selection in Sect. IV-D).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "chord/ring.hpp"
#include "net/network.hpp"

namespace ahsw::overlay {

/// One storage node entry of a location-table row.
///
/// `version` is a per-(key, provider) monotonic counter maintained by the
/// row *owner*: every owner-side mutation (publish, retract, upsert) bumps
/// it, and a full removal buries it in the tombstone. Replicas mirror the
/// owner's version verbatim, so recovery reconciliation can order snapshots
/// causally instead of max-merging frequencies — a stale replica snapshot
/// (older version) can never overwrite a newer, lower frequency. The
/// version rides inside the entry's existing 12-byte wire envelope
/// (packed with the frequency), so no byte-accounting formula changes.
struct Provider {
  net::NodeAddress address = net::kNoAddress;
  std::uint32_t frequency = 0;  // matching triples at that node
  std::uint32_t version = 0;    // owner-bumped per-entry mutation counter

  friend bool operator==(const Provider&, const Provider&) = default;
};

class LocationTable {
 public:
  /// Add `frequency` matching triples for (key, address); merges with an
  /// existing entry for the same provider. Owner-side: bumps the entry
  /// version past any buried tombstone version.
  void publish(chord::Key key, net::NodeAddress address,
               std::uint32_t frequency);

  /// Decrease the frequency for (key, address) by `frequency`; removes the
  /// entry at zero (burying its version). Returns true if something changed.
  bool retract(chord::Key key, net::NodeAddress address,
               std::uint32_t frequency);

  /// Set the frequency for (key, address) to exactly `frequency`
  /// (snapshot semantics: used by storage-node rejoin, where repeated
  /// writes must be idempotent). frequency == 0 removes the entry.
  /// Owner-side: bumps the version like every owner mutation.
  void upsert(chord::Key key, net::NodeAddress address,
              std::uint32_t frequency);

  /// Mirror the owner's (frequency, version) for (key, address) verbatim —
  /// the replica-maintenance write path. Takes effect only when `version`
  /// is at least as new as what this table holds (entry or tombstone), so
  /// reordered or repeated pushes are harmless. frequency == 0 removes the
  /// entry and buries `version`.
  void upsert_replica(chord::Key key, net::NodeAddress address,
                      std::uint32_t frequency, std::uint32_t version);

  /// Merge a snapshot of rows, taking the *newer version* per provider
  /// (recovery merge: several replica holders may push the same row without
  /// inflating it; equal versions merge by max frequency, so the merge stays
  /// idempotent). A provider this table has deleted from a row (retract to
  /// zero, purge, upsert(0)) is tombstoned together with its last version;
  /// an incoming entry resurrects it only when its version is strictly newer
  /// than the burial — i.e. the provider demonstrably re-published since.
  /// This closes the old at-least-once window where a *partial* retract
  /// (which only lowers the frequency) could be undone by a stale replica
  /// snapshot max-merging the old, higher frequency back in.
  void reconcile(const std::map<chord::Key, std::vector<Provider>>& rows);

  /// Drop a provider from one row entirely (lazy repair after a storage
  /// node failure, Sect. III-D). Returns true if it was present.
  bool purge(chord::Key key, net::NodeAddress address);

  /// Drop a provider from every row (bulk repair).
  void purge_everywhere(net::NodeAddress address);

  /// Providers for a key; empty if unknown. Sorted by ascending frequency
  /// (the order the further-optimized chain strategy wants), ties by
  /// address for determinism. Rows are kept sorted on mutation, so this is
  /// a plain copy — hot-key lookups no longer pay O(n log n) per call.
  [[nodiscard]] std::vector<Provider> lookup(chord::Key key) const;

  /// One row entry, or nullptr when absent (no copy; used by replica
  /// maintenance to read the owner's authoritative frequency + version).
  [[nodiscard]] const Provider* find(chord::Key key,
                                     net::NodeAddress address) const;

  /// Remove and return all rows with key in (lo, hi] on the ring — the
  /// slice handed to a joining index node (Sect. III-C).
  [[nodiscard]] std::map<chord::Key, std::vector<Provider>> extract_range(
      chord::Key lo, chord::Key hi);

  /// Same, but ring position is `to_ring(key)` instead of the key itself.
  /// Rows are keyed by the full hash Kj (so distinct keys never merge), while
  /// ownership lives in the m-bit ring space; this mapping bridges the two.
  [[nodiscard]] std::map<chord::Key, std::vector<Provider>>
  extract_range_mapped(chord::Key lo, chord::Key hi,
                       const std::function<chord::Key(chord::Key)>& to_ring);

  /// Merge rows (from a slice transfer or replica activation). Versions are
  /// preserved: an entry new to this table keeps the incoming version (so a
  /// transferred row stays ahead of its replica mirrors), a merged entry
  /// adds frequencies and advances past both versions.
  void absorb(const std::map<chord::Key, std::vector<Provider>>& rows);

  /// Remove one row entirely.
  void erase_row(chord::Key key) { rows_.erase(key); }

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t entry_count() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return rows_.empty(); }

  /// Serialized size (for charging slice transfers / replication traffic).
  [[nodiscard]] std::size_t byte_size() const noexcept;
  /// Serialized size of one provider list response.
  [[nodiscard]] static std::size_t response_bytes(std::size_t providers) {
    return 16 + 12 * providers;
  }

  [[nodiscard]] const std::map<chord::Key, std::vector<Provider>>& rows()
      const noexcept {
    return rows_;
  }

  /// True if (key, address) was deleted here and not re-published since —
  /// reconcile() refuses to resurrect such entries with stale versions.
  [[nodiscard]] bool tombstoned(chord::Key key,
                                net::NodeAddress address) const {
    auto it = tombstones_.find(key);
    return it != tombstones_.end() && it->second.count(address) > 0;
  }

  /// The version buried with a tombstoned (key, address), if any.
  [[nodiscard]] std::optional<std::uint32_t> tombstone_version(
      chord::Key key, net::NodeAddress address) const {
    auto it = tombstones_.find(key);
    if (it == tombstones_.end()) return std::nullopt;
    auto pit = it->second.find(address);
    if (pit == it->second.end()) return std::nullopt;
    return pit->second;
  }

 private:
  void bury(chord::Key key, net::NodeAddress address, std::uint32_t version) {
    std::uint32_t& buried = tombstones_[key][address];
    buried = std::max(buried, version);
  }
  /// Clear the tombstone; returns the buried version (0 when none) so the
  /// reviving entry can start strictly past it.
  std::uint32_t revive(chord::Key key, net::NodeAddress address) {
    auto it = tombstones_.find(key);
    if (it == tombstones_.end()) return 0;
    auto pit = it->second.find(address);
    if (pit == it->second.end()) return 0;
    std::uint32_t buried = pit->second;
    it->second.erase(pit);
    if (it->second.empty()) tombstones_.erase(it);
    return buried;
  }
  /// Restore the (frequency asc, address asc) row invariant after a
  /// mutation — the deterministic order lookup() and the chain strategies
  /// consume.
  static void sort_row(std::vector<Provider>& row);

  std::map<chord::Key, std::vector<Provider>> rows_;
  /// Deleted (key, provider) pairs awaiting re-publication, with the
  /// version they died at. Tombstones stay local: they do not travel with
  /// extract_range slices, so a new owner has a short resurrection window
  /// until the next purge — the documented at-least-once behavior of
  /// recovery reconciliation.
  std::map<chord::Key, std::map<net::NodeAddress, std::uint32_t>> tombstones_;
};

}  // namespace ahsw::overlay
