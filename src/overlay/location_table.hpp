// The location table of an index node (Sect. III-B, Table I).
//
// Each row maps a key K_i (the hash of one or two triple attributes) to the
// list of storage nodes sharing triples with that attribute value, together
// with a frequency: how many of that node's triples share the hash. The
// frequency is the statistic the paper's optimizations consume (chain
// ordering in Sect. IV-C, join ordering / site selection in Sect. IV-D).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "chord/ring.hpp"
#include "net/network.hpp"

namespace ahsw::overlay {

/// One storage node entry of a location-table row.
struct Provider {
  net::NodeAddress address = net::kNoAddress;
  std::uint32_t frequency = 0;  // matching triples at that node

  friend bool operator==(const Provider&, const Provider&) = default;
};

class LocationTable {
 public:
  /// Add `frequency` matching triples for (key, address); merges with an
  /// existing entry for the same provider.
  void publish(chord::Key key, net::NodeAddress address,
               std::uint32_t frequency);

  /// Decrease the frequency for (key, address) by `frequency`; removes the
  /// entry at zero. Returns true if something changed.
  bool retract(chord::Key key, net::NodeAddress address,
               std::uint32_t frequency);

  /// Set the frequency for (key, address) to exactly `frequency`
  /// (snapshot semantics: used by replica maintenance, where repeated
  /// writes must be idempotent). frequency == 0 removes the entry.
  void upsert(chord::Key key, net::NodeAddress address,
              std::uint32_t frequency);

  /// Merge a snapshot of rows taking the max frequency per provider
  /// (idempotent recovery merge: several replica holders may push the same
  /// row without inflating it). A provider this table has deleted from a row
  /// (retract to zero, purge, upsert(0)) is tombstoned and will NOT be
  /// resurrected by a stale replica push; the tombstone clears when the
  /// provider re-publishes. Remaining at-least-once window: a *partial*
  /// retract only lowers the frequency, so a stale replica snapshot can
  /// still max-merge the old, higher frequency back in until the next
  /// replication round overwrites it.
  void reconcile(const std::map<chord::Key, std::vector<Provider>>& rows);

  /// Drop a provider from one row entirely (lazy repair after a storage
  /// node failure, Sect. III-D). Returns true if it was present.
  bool purge(chord::Key key, net::NodeAddress address);

  /// Drop a provider from every row (bulk repair).
  void purge_everywhere(net::NodeAddress address);

  /// Providers for a key; empty if unknown. Sorted by ascending frequency
  /// (the order the further-optimized chain strategy wants), ties by
  /// address for determinism.
  [[nodiscard]] std::vector<Provider> lookup(chord::Key key) const;

  /// Remove and return all rows with key in (lo, hi] on the ring — the
  /// slice handed to a joining index node (Sect. III-C).
  [[nodiscard]] std::map<chord::Key, std::vector<Provider>> extract_range(
      chord::Key lo, chord::Key hi);

  /// Same, but ring position is `to_ring(key)` instead of the key itself.
  /// Rows are keyed by the full hash Kj (so distinct keys never merge), while
  /// ownership lives in the m-bit ring space; this mapping bridges the two.
  [[nodiscard]] std::map<chord::Key, std::vector<Provider>>
  extract_range_mapped(chord::Key lo, chord::Key hi,
                       const std::function<chord::Key(chord::Key)>& to_ring);

  /// Merge rows (from a slice transfer or replica activation).
  void absorb(const std::map<chord::Key, std::vector<Provider>>& rows);

  /// Remove one row entirely.
  void erase_row(chord::Key key) { rows_.erase(key); }

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t entry_count() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return rows_.empty(); }

  /// Serialized size (for charging slice transfers / replication traffic).
  [[nodiscard]] std::size_t byte_size() const noexcept;
  /// Serialized size of one provider list response.
  [[nodiscard]] static std::size_t response_bytes(std::size_t providers) {
    return 16 + 12 * providers;
  }

  [[nodiscard]] const std::map<chord::Key, std::vector<Provider>>& rows()
      const noexcept {
    return rows_;
  }

  /// True if (key, address) was deleted here and not re-published since —
  /// reconcile() refuses to resurrect such entries.
  [[nodiscard]] bool tombstoned(chord::Key key,
                                net::NodeAddress address) const {
    auto it = tombstones_.find(key);
    return it != tombstones_.end() && it->second.count(address) > 0;
  }

 private:
  void bury(chord::Key key, net::NodeAddress address) {
    tombstones_[key].insert(address);
  }
  void revive(chord::Key key, net::NodeAddress address) {
    auto it = tombstones_.find(key);
    if (it == tombstones_.end()) return;
    it->second.erase(address);
    if (it->second.empty()) tombstones_.erase(it);
  }

  std::map<chord::Key, std::vector<Provider>> rows_;
  /// Deleted (key, provider) pairs awaiting re-publication. Tombstones stay
  /// local: they do not travel with extract_range slices, so a new owner
  /// has a short resurrection window until the next purge — the documented
  /// at-least-once behavior of recovery reconciliation.
  std::map<chord::Key, std::set<net::NodeAddress>> tombstones_;
};

}  // namespace ahsw::overlay
