#include "overlay/keys.hpp"

#include <cassert>

#include "common/hash.hpp"

namespace ahsw::overlay {

std::string_view index_key_kind_name(IndexKeyKind k) noexcept {
  switch (k) {
    case IndexKeyKind::kS: return "S";
    case IndexKeyKind::kP: return "P";
    case IndexKeyKind::kO: return "O";
    case IndexKeyKind::kSP: return "SP";
    case IndexKeyKind::kPO: return "PO";
    case IndexKeyKind::kSO: return "SO";
  }
  return "?";
}

namespace {
/// Canonical byte form of a term for hashing: the full surface form, which
/// distinguishes IRIs from equal-spelled literals.
[[nodiscard]] std::string canonical(const rdf::Term& t) {
  return t.to_string();
}
}  // namespace

chord::Key index_key(IndexKeyKind kind, const rdf::Term& a) {
  assert(kind == IndexKeyKind::kS || kind == IndexKeyKind::kP ||
         kind == IndexKeyKind::kO);
  return common::tagged_hash(static_cast<std::uint8_t>(kind), canonical(a));
}

chord::Key index_key(IndexKeyKind kind, const rdf::Term& a,
                     const rdf::Term& b) {
  assert(kind == IndexKeyKind::kSP || kind == IndexKeyKind::kPO ||
         kind == IndexKeyKind::kSO);
  return common::tagged_hash(static_cast<std::uint8_t>(kind), canonical(a),
                             canonical(b));
}

std::array<chord::Key, kIndexKeyKinds> index_keys(const rdf::Triple& t) {
  return {
      index_key(IndexKeyKind::kS, t.s),
      index_key(IndexKeyKind::kP, t.p),
      index_key(IndexKeyKind::kO, t.o),
      index_key(IndexKeyKind::kSP, t.s, t.p),
      index_key(IndexKeyKind::kPO, t.p, t.o),
      index_key(IndexKeyKind::kSO, t.s, t.o),
  };
}

std::optional<PatternKey> key_for_pattern(const rdf::TriplePattern& p) {
  const rdf::Term* s = p.bound_s();
  const rdf::Term* pr = p.bound_p();
  const rdf::Term* o = p.bound_o();
  if (s != nullptr && pr != nullptr) {
    return PatternKey{IndexKeyKind::kSP, index_key(IndexKeyKind::kSP, *s, *pr)};
  }
  if (pr != nullptr && o != nullptr) {
    return PatternKey{IndexKeyKind::kPO, index_key(IndexKeyKind::kPO, *pr, *o)};
  }
  if (s != nullptr && o != nullptr) {
    return PatternKey{IndexKeyKind::kSO, index_key(IndexKeyKind::kSO, *s, *o)};
  }
  if (s != nullptr) {
    return PatternKey{IndexKeyKind::kS, index_key(IndexKeyKind::kS, *s)};
  }
  if (pr != nullptr) {
    return PatternKey{IndexKeyKind::kP, index_key(IndexKeyKind::kP, *pr)};
  }
  if (o != nullptr) {
    return PatternKey{IndexKeyKind::kO, index_key(IndexKeyKind::kO, *o)};
  }
  return std::nullopt;
}

}  // namespace ahsw::overlay
