#include "overlay/overlay.hpp"

#include <array>
#include <cassert>

namespace ahsw::overlay {

namespace {
constexpr std::size_t kPublishBytes = 24;   // key + address + frequency
// Owner-to-replica pushes additionally carry the owner's per-entry version
// (replicas mirror it verbatim and use it to reject reordered pushes), so
// they are 4 bytes wider than a plain publish.
constexpr std::size_t kReplicaPushBytes = 28;  // key + address + freq + version
constexpr std::size_t kRequestBytes = 32;   // pattern key + requester
}  // namespace

HybridOverlay::HybridOverlay(net::Network& network, OverlayConfig config)
    : net_(&network),
      config_(config),
      ring_(network, config.ring),
      id_rng_(config.seed) {
  ring_.set_transfer_hook([this](chord::Key old_owner, chord::Key new_owner,
                                 chord::Key lo, chord::Key hi,
                                 net::SimTime when) {
    on_transfer(old_owner, new_owner, lo, hi, when);
  });
}

std::unique_ptr<HybridOverlay> HybridOverlay::clone_for_worker(
    net::Network& network) const {
  auto clone = std::unique_ptr<HybridOverlay>(new HybridOverlay(*this));
  clone->net_ = &network;
  clone->ring_.rebind_network(network);
  // The copied transfer hook still captures the master overlay; re-point it
  // at the clone (unique_ptr keeps the address stable).
  HybridOverlay* raw = clone.get();
  clone->ring_.set_transfer_hook([raw](chord::Key old_owner,
                                       chord::Key new_owner, chord::Key lo,
                                       chord::Key hi, net::SimTime when) {
    raw->on_transfer(old_owner, new_owner, lo, hi, when);
  });
  // The master's trace must not leak into the clone: spans recorded off it
  // would interleave nondeterministically across threads. The parallel
  // driver re-attaches a shard-private trace for traced batches.
  clone->trace_ = nullptr;
  clone->ring_.set_trace(nullptr);
  return clone;
}

chord::Key HybridOverlay::add_index_node(net::SimTime now) {
  chord::Key id = ring_.truncate(id_rng_.next());
  while (ring_.contains(id)) id = ring_.truncate(id_rng_.next());
  return add_index_node_with_id(id, now);
}

chord::Key HybridOverlay::add_index_node_with_id(chord::Key id,
                                                 net::SimTime now) {
  id = ring_.truncate(id);
  net::NodeAddress addr = net_->allocate_address();
  if (ring_.size() == 0) {
    ring_.create(addr, id);
  } else {
    // Bootstrap through any live ring node (lowest id, deterministically).
    ring_.join(addr, id, *ring_.first_live_id(), now);
  }
  IndexNodeState state;
  state.id = id;
  state.address = addr;
  index_.emplace(id, std::move(state));
  index_by_address_[addr] = id;
  return id;
}

net::NodeAddress HybridOverlay::add_storage_node() {
  assert(!index_.empty());
  std::vector<chord::Key> live = ring_.live_ids();
  chord::Key target = live[attach_counter_++ % live.size()];
  return add_storage_node_attached(target);
}

net::NodeAddress HybridOverlay::add_storage_node_attached(
    chord::Key index_id) {
  assert(index_.count(index_id) > 0);
  StorageNodeState s;
  s.address = net_->allocate_address();
  s.attached_index = index_id;
  net::NodeAddress addr = s.address;
  storage_.emplace(addr, std::move(s));
  return addr;
}

std::vector<net::NodeAddress> HybridOverlay::live_storage_addresses() const {
  std::vector<net::NodeAddress> out;
  for (const auto& [addr, s] : storage_) {
    if (!net_->is_failed(addr)) out.push_back(addr);
  }
  return out;
}

chord::Key HybridOverlay::entry_ring_node(net::NodeAddress requester) {
  auto si = storage_.find(requester);
  if (si == storage_.end()) {
    // An index node fields its own requests; the address index replaces
    // the former O(ring) scan over index_.
    auto ii = index_by_address_.find(requester);
    if (ii != index_by_address_.end()) return ii->second;
    assert(false && "unknown requester address");
    return 0;
  }
  StorageNodeState& s = si->second;
  if (!ring_.contains(s.attached_index) ||
      net_->is_failed(ring_.address_of(s.attached_index))) {
    // Re-attach to the lowest live index node (deterministic; no full
    // live-id materialization on this per-request path).
    std::optional<chord::Key> live = ring_.first_live_id();
    assert(live.has_value() && "no live index nodes");
    s.attached_index = *live;
  }
  return s.attached_index;
}

void HybridOverlay::on_transfer(chord::Key old_owner, chord::Key new_owner,
                                chord::Key lo, chord::Key hi,
                                net::SimTime when) {
  auto oi = index_.find(old_owner);
  auto ni = index_.find(new_owner);
  if (oi == index_.end()) return;
  // The new owner may not be registered yet during its own join; stash the
  // slice under its id — add_index_node_with_id registers right after join,
  // so create the state eagerly here.
  if (ni == index_.end()) {
    IndexNodeState fresh;
    fresh.id = new_owner;
    fresh.address = ring_.contains(new_owner) ? ring_.address_of(new_owner)
                                              : net::kNoAddress;
    ni = index_.emplace(new_owner, std::move(fresh)).first;
    if (ni->second.address != net::kNoAddress) {
      index_by_address_[ni->second.address] = new_owner;
    }
  }
  RowSnapshot slice = oi->second.table.extract_range_mapped(
      lo, hi, [this](chord::Key k) { return ring_.truncate(k); });
  if (slice.empty()) return;
  std::size_t bytes = 8;
  for (const Row& r : slice) {
    bytes += 8 + LocationTable::kProviderBytes * r.providers.size();
  }
  net_->send(oi->second.address, ni->second.address, bytes, when,
             net::Category::kIndex);
  ni->second.table.absorb(slice);
  // Re-replicate the transferred rows from their new owner: replica
  // placement follows ownership, otherwise a later crash of the new owner
  // would lose rows whose replicas still trail the old owner.
  for (const Row& r : slice) {
    for (const Provider& p : r.providers) {
      replicate_row(ni->second, r.key, p.address, when);
    }
  }
}

void HybridOverlay::replicate_row(IndexNodeState& owner, chord::Key key,
                                  net::NodeAddress provider,
                                  net::SimTime now) {
  if (config_.replication_factor <= 1) return;
  if (!ring_.contains(owner.id)) return;
  // Replicas mirror the owner's (frequency, version) verbatim, so repeated
  // replication (publish, slice transfer, recovery) is idempotent and
  // reordered pushes are rejected by the version check. When the entry is
  // gone the push carries frequency 0 with the buried tombstone version, so
  // replicas bury the same version the owner did.
  const Provider* entry = owner.table.find(key, provider);
  std::uint32_t freq = entry ? entry->frequency : 0;
  std::uint32_t version =
      entry ? entry->version
            : owner.table.tombstone_version(key, provider).value_or(0);
  const chord::NodeState& rs = ring_.state(owner.id);
  int copies = 0;
  for (chord::Key succ : rs.successors) {
    if (copies >= config_.replication_factor - 1) break;
    auto it = index_.find(succ);
    if (it == index_.end() || succ == owner.id) continue;
    net_->send(owner.address, it->second.address, kReplicaPushBytes, now,
               net::Category::kIndex);
    it->second.replicas.upsert_replica(key, provider, freq, version);
    ++copies;
  }
}

void HybridOverlay::configure_caches(const CacheConfig& config) {
  cache_config_ = config;
  caches_.clear();
  cache_subscribers_.clear();
}

LocationCache& HybridOverlay::cache_for(net::NodeAddress initiator) {
  auto it = caches_.find(initiator);
  if (it == caches_.end()) {
    it = caches_.emplace(initiator, LocationCache(cache_config_)).first;
  }
  return it->second;
}

void HybridOverlay::subscribe_invalidations(chord::Key key,
                                            net::NodeAddress initiator) {
  cache_subscribers_[key].insert(initiator);
}

CacheStats HybridOverlay::cache_stats_total() const {
  CacheStats total;
  for (const auto& [addr, cache] : caches_) total.accumulate(cache.stats());
  return total;
}

void HybridOverlay::push_invalidations(chord::Key key,
                                       net::NodeAddress owner_addr,
                                       net::SimTime now, bool charge) {
  auto it = cache_subscribers_.find(key);
  if (it == cache_subscribers_.end()) return;
  for (net::NodeAddress initiator : it->second) {
    auto ci = caches_.find(initiator);
    if (ci != caches_.end()) ci->second.invalidate(key);
    if (charge) {
      net_->send(owner_addr, initiator, cache_config_.invalidation_bytes, now,
                 net::Category::kIndex);
    }
  }
  // One-shot leases: the cached rows are gone, so the next miss re-fetches
  // and re-subscribes if the key is still hot.
  cache_subscribers_.erase(it);
}

net::SimTime HybridOverlay::publish_key(net::NodeAddress from, chord::Key key,
                                        std::uint32_t freq, PublishOp op,
                                        net::SimTime now) {
  chord::Key entry = entry_ring_node(from);
  net::NodeAddress entry_addr = ring_.address_of(entry);
  net::SimTime t =
      net_->send(from, entry_addr, kPublishBytes, now, net::Category::kIndex);
  // Rows are keyed by the full hash Kj; the ring routes its truncation.
  chord::Ring::LookupResult lr =
      ring_.find_successor(entry, ring_.truncate(key), t);
  if (!lr.ok) return t;
  t = lr.completed_at;
  t = net_->send(entry_addr, lr.owner_address, kPublishBytes, t,
                 net::Category::kIndex);
  auto it = index_.find(lr.owner);
  if (it == index_.end()) return t;
  switch (op) {
    case PublishOp::kAdd:
      it->second.table.publish(key, from, freq);
      break;
    case PublishOp::kRetract:
      it->second.table.retract(key, from, freq);
      break;
    case PublishOp::kSnapshot:
      it->second.table.upsert(key, from, freq);
      break;
  }
  replicate_row(it->second, key, from, t);
  // Owner-side mutation: leased cached copies of this row are now stale —
  // push their invalidations (charged, they are real messages).
  push_invalidations(key, it->second.address, t, /*charge=*/true);
  return t;
}

net::SimTime HybridOverlay::share_triples(
    net::NodeAddress addr, const std::vector<rdf::Triple>& triples,
    net::SimTime now) {
  StorageNodeState& s = storage_.at(addr);
  const std::size_t kinds = config_.pair_keys ? kIndexKeyKinds : 3u;
  std::map<chord::Key, std::uint32_t> delta;
  for (const rdf::Triple& t : triples) {
    if (!s.store.insert(t)) continue;  // duplicate: nothing to publish
    std::array<chord::Key, kIndexKeyKinds> keys = index_keys(t);
    for (std::size_t k = 0; k < kinds; ++k) ++delta[keys[k]];
  }
  // Publishes for distinct keys proceed in parallel; completion is the max.
  net::SimTime latest = now;
  for (const auto& [key, freq] : delta) {
    latest = std::max(latest, publish_key(addr, key, freq, PublishOp::kAdd, now));
    s.published[key] += freq;
  }
  return latest;
}

net::SimTime HybridOverlay::unshare_triples(
    net::NodeAddress addr, const std::vector<rdf::Triple>& triples,
    net::SimTime now) {
  StorageNodeState& s = storage_.at(addr);
  const std::size_t kinds = config_.pair_keys ? kIndexKeyKinds : 3u;
  std::map<chord::Key, std::uint32_t> delta;
  for (const rdf::Triple& t : triples) {
    if (!s.store.erase(t)) continue;
    std::array<chord::Key, kIndexKeyKinds> keys = index_keys(t);
    for (std::size_t k = 0; k < kinds; ++k) ++delta[keys[k]];
  }
  net::SimTime latest = now;
  for (const auto& [key, freq] : delta) {
    latest =
        std::max(latest, publish_key(addr, key, freq, PublishOp::kRetract, now));
    auto it = s.published.find(key);
    if (it != s.published.end()) {
      it->second = it->second > freq ? it->second - freq : 0;
      if (it->second == 0) s.published.erase(it);
    }
  }
  return latest;
}

std::optional<chord::Key> HybridOverlay::row_key(
    const rdf::TriplePattern& p) const {
  std::optional<PatternKey> pk = key_for_pattern(p);
  if (!pk.has_value()) return std::nullopt;
  if (!config_.pair_keys && (pk->kind == IndexKeyKind::kSP ||
                             pk->kind == IndexKeyKind::kPO ||
                             pk->kind == IndexKeyKind::kSO)) {
    // Three-key ablation mode: downgrade to the most selective single
    // bound attribute (subject, then object, then predicate). Providers
    // are an over-approximation; they filter locally.
    if (const rdf::Term* s = p.bound_s()) return index_key(IndexKeyKind::kS, *s);
    if (const rdf::Term* o = p.bound_o()) return index_key(IndexKeyKind::kO, *o);
    if (const rdf::Term* pr = p.bound_p()) return index_key(IndexKeyKind::kP, *pr);
  }
  return pk->key;
}

HybridOverlay::Located HybridOverlay::locate(net::NodeAddress requester,
                                             const rdf::TriplePattern& p,
                                             net::SimTime now) {
  Located res;
  std::optional<chord::Key> pk = row_key(p);
  if (!pk.has_value()) {
    // (?s, ?p, ?o): the index cannot narrow anything — flood all providers.
    res.broadcast = true;
    res.ok = true;
    res.completed_at = now;
    for (net::NodeAddress addr : live_storage_addresses()) {
      res.providers.push_back(Provider{
          addr, static_cast<std::uint32_t>(storage_.at(addr).store.size())});
    }
    return res;
  }

  chord::Key key = *pk;
  obs::SpanScope span(trace_, obs::SpanKind::kIndexLookup,
                      "key " + std::to_string(ring_.truncate(key)), now,
                      requester);
  chord::Key entry = entry_ring_node(requester);
  net::NodeAddress entry_addr = ring_.address_of(entry);
  net::SimTime t = net_->send(requester, entry_addr, kRequestBytes, now,
                              net::Category::kIndex);
  chord::Ring::LookupResult lr =
      ring_.find_successor(entry, ring_.truncate(key), t);
  if (!lr.ok) return res;
  t = net_->send(entry_addr, lr.owner_address, kRequestBytes,
                 lr.completed_at, net::Category::kIndex);
  res.hops = lr.hops;
  res.index_node = lr.owner;

  auto it = index_.find(lr.owner);
  if (it == index_.end()) return res;
  res.providers = it->second.table.lookup(key);
  res.ok = true;
  res.completed_at =
      net_->send(lr.owner_address, requester,
                 LocationTable::response_bytes(res.providers.size()), t,
                 net::Category::kIndex);
  span.finish(res.completed_at);
  return res;
}

net::SimTime HybridOverlay::report_dead_provider(net::NodeAddress reporter,
                                                 const rdf::TriplePattern& p,
                                                 net::NodeAddress dead,
                                                 net::SimTime now) {
  std::optional<chord::Key> pk = row_key(p);
  if (!pk.has_value()) return now;
  chord::Key key = *pk;
  chord::Key owner = ring_.oracle_successor(ring_.truncate(key));
  auto it = index_.find(owner);
  if (it == index_.end()) return now;
  obs::SpanScope span(trace_, obs::SpanKind::kRepair,
                      "purge dead provider " + std::to_string(dead), now,
                      reporter);
  net::SimTime t = net_->send(reporter, it->second.address, kPublishBytes,
                              now, net::Category::kIndex);
  it->second.table.purge(key, dead);
  if (config_.propagate_purge_to_replicas && config_.replication_factor > 1 &&
      ring_.contains(owner)) {
    // Forward the purge along the same successor walk replicate_row uses:
    // a replica row left unpurged resurrects the dead provider as soon as
    // the primary fails and repair() promotes it.
    const chord::NodeState& rs = ring_.state(owner);
    int copies = 0;
    for (chord::Key succ : rs.successors) {
      if (copies >= config_.replication_factor - 1) break;
      auto hi = index_.find(succ);
      if (hi == index_.end() || succ == owner) continue;
      net_->send(it->second.address, hi->second.address, kReplicaPushBytes, t,
                 net::Category::kIndex);
      hi->second.replicas.purge(key, dead);
      ++copies;
    }
  }
  // The row changed (the dead provider is gone): leased cached copies are
  // stale. The reporter's own cache is invalidated by the executor's
  // give-up path; other initiators learn through the owner push.
  push_invalidations(key, it->second.address, t, /*charge=*/true);
  span.finish(t);
  return t;
}

void HybridOverlay::index_node_leave(chord::Key id, net::SimTime now) {
  assert(index_.count(id) > 0);
  ring_.leave(id, now);  // fires the transfer hook: table moves to successor
  auto it = index_.find(id);
  if (it != index_.end()) index_by_address_.erase(it->second.address);
  index_.erase(id);
}

void HybridOverlay::index_node_fail(chord::Key id) {
  assert(index_.count(id) > 0);
  ring_.fail(id);
}

void HybridOverlay::storage_node_fail(net::NodeAddress addr) {
  assert(storage_.count(addr) > 0);
  net_->fail(addr);
}

net::SimTime HybridOverlay::storage_node_leave(net::NodeAddress addr,
                                               net::SimTime now) {
  StorageNodeState& s = storage_.at(addr);
  net::SimTime latest = now;
  std::map<chord::Key, std::uint32_t> published = s.published;
  for (const auto& [key, freq] : published) {
    latest =
        std::max(latest, publish_key(addr, key, freq, PublishOp::kRetract, now));
  }
  storage_.erase(addr);
  return latest;
}

net::SimTime HybridOverlay::storage_node_rejoin(net::NodeAddress addr,
                                                net::SimTime now) {
  StorageNodeState& s = storage_.at(addr);
  assert(!net_->is_failed(addr) && "recover the node before rejoining");
  // Snapshot semantics, not additive: the primary row may still carry the
  // pre-crash entry (lazy repair only purges rows a query actually hit), and
  // where it was purged the tombstone must be revived, not max-merged around.
  net::SimTime latest = now;
  for (const auto& [key, freq] : s.published) {
    latest = std::max(latest,
                      publish_key(addr, key, freq, PublishOp::kSnapshot, now));
  }
  return latest;
}

void HybridOverlay::repair(net::SimTime now) {
  // Drop ring state of failed index nodes, then promote replica rows whose
  // arc the survivors inherited.
  std::vector<chord::Key> failed;
  for (const auto& [id, ix] : index_) {
    if (ring_.contains(id) && net_->is_failed(ix.address)) failed.push_back(id);
  }
  ring_.repair(now);
  for (chord::Key f : failed) {
    auto fi = index_.find(f);
    if (fi != index_.end()) index_by_address_.erase(fi->second.address);
    index_.erase(f);
  }

  // Recovery reconciliation: every surviving replica holder routes its
  // rows to the key's *current* oracle owner (which, after arbitrary join/
  // crash interleavings, need not be the holder itself). reconcile() takes
  // the newer per-entry version (equal versions merge by max frequency), so
  // several holders pushing the same row stay idempotent and a stale holder
  // cannot resurrect an old, higher frequency; owners then re-seed replicas
  // at their own successors.
  std::vector<chord::Key> live;
  for (const auto& [id, ix] : index_) {
    if (ring_.contains(id)) live.push_back(id);
  }
  for (chord::Key holder_id : live) {
    IndexNodeState& holder = index_.at(holder_id);
    std::vector<chord::Key> promoted;
    for (const Row& r : holder.replicas.rows()) {
      chord::Key owner_id = ring_.oracle_successor(ring_.truncate(r.key));
      auto oi = index_.find(owner_id);
      if (oi == index_.end()) continue;
      if (owner_id != holder_id) {
        net_->send(holder.address, oi->second.address,
                   8 + LocationTable::kProviderBytes * r.providers.size(),
                   now, net::Category::kIndex);
      } else {
        promoted.push_back(r.key);
      }
      oi->second.table.reconcile({r});
    }
    for (chord::Key key : promoted) holder.replicas.erase_row(key);
  }
  // Owners re-replicate every row they now hold whose replicas may be
  // stale (conservatively: all of them once per repair).
  for (chord::Key owner_id : live) {
    IndexNodeState& owner = index_.at(owner_id);
    RowSnapshot rows = owner.table.rows();
    for (const Row& r : rows) {
      for (const Provider& p : r.providers) {
        replicate_row(owner, r.key, p.address, now);
      }
    }
  }
}

void HybridOverlay::purge_failed_everywhere() {
  std::vector<net::NodeAddress> dead;
  for (const auto& [addr, s] : storage_) {
    if (net_->is_failed(addr)) dead.push_back(addr);
  }
  if (dead.empty()) return;
  for (auto& [id, ix] : index_) {
    for (net::NodeAddress addr : dead) {
      ix.table.purge_everywhere(addr);
      ix.replicas.purge_everywhere(addr);
    }
  }
  // Oracle cleanup extends to the caches: drop every cached row that still
  // lists a dead provider, so post-convergence audits (I6 over cached rows)
  // have the same precondition as the index layer. Charges nothing — like
  // the purge above, this models the eventual outcome, not a protocol.
  for (auto& [initiator, cache] : caches_) {
    for (net::NodeAddress addr : dead) cache.invalidate_provider(addr);
  }
}

net::SimTime HybridOverlay::republish_all(net::SimTime now) {
  net::SimTime latest = now;
  for (auto& [addr, s] : storage_) {
    if (net_->is_failed(addr)) continue;
    for (const auto& [key, freq] : s.published) {
      latest = std::max(latest,
                        publish_key(addr, key, freq, PublishOp::kSnapshot, now));
    }
  }
  return latest;
}

rdf::TripleStore HybridOverlay::merged_store() const {
  rdf::TripleStore merged;
  for (const auto& [addr, s] : storage_) {
    if (net_->is_failed(addr)) continue;
    s.store.for_each([&](const rdf::Triple& t) { merged.insert(t); });
  }
  return merged;
}

}  // namespace ahsw::overlay
