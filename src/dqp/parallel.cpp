#include "dqp/parallel.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
// ahsw-lint: allow(D1) worker threads carry no simulated time: each shard is
// a self-contained deterministic sub-simulation on a cloned overlay, and the
// merge below fixes the global order by (time, query, task) — the scheduler
// still models all parallelism; threads only shrink wall-clock time.
#include <thread>

#include "dqp/executor.hpp"

namespace ahsw::dqp {

namespace {

/// One worker's world: a private copy of the network + overlay, the shard's
/// queries with their original batch-wide ids, and the mutation log the
/// master replays.
struct Shard {
  std::vector<BatchQuery> queries;
  std::vector<std::uint32_t> qids;
  net::Network network;
  std::unique_ptr<overlay::HybridOverlay> overlay;
  BatchOptions opts;
  StateLog log;
  BatchResult result;
};

/// Merge-order key: state actions carry their enclosing fire's event key;
/// injections sort under the reserved injection query id exactly as the
/// serial event loop pops them. `action == nullptr` marks an injection
/// (task = injection index).
struct MergeEntry {
  net::SimTime at = 0;
  std::uint32_t qid = 0;
  std::uint32_t task = 0;
  std::uint32_t seq = 0;
  const StateAction* action = nullptr;
};

[[nodiscard]] bool merge_less(const MergeEntry& a,
                              const MergeEntry& b) noexcept {
  if (a.at != b.at) return a.at < b.at;
  if (a.qid != b.qid) return a.qid < b.qid;
  if (a.task != b.task) return a.task < b.task;
  return a.seq < b.seq;
}

/// Re-apply one recorded shard mutation on the master overlay. Must mirror
/// the executor's own calls exactly (src/dqp/executor.cpp recording sites):
/// the replay reproduces the serial driver's overlay end state, including
/// cache rows, access counts, lease subscriptions and table tombstones.
void replay_action(overlay::HybridOverlay& ov, const StateAction& a) {
  switch (a.kind) {
    case StateAction::Kind::kCacheLookup:
      (void)ov.cache_for(a.initiator).lookup(a.key, a.when);
      break;
    case StateAction::Kind::kCacheInsert:
      (void)ov.cache_for(a.initiator)
          .insert(a.key, a.providers, a.index_node, a.fetched_at);
      break;
    case StateAction::Kind::kSubscribe:
      ov.subscribe_invalidations(a.key, a.initiator);
      break;
    case StateAction::Kind::kCacheInvalidate:
      (void)ov.cache_for(a.initiator).invalidate(a.key);
      break;
    case StateAction::Kind::kReportDead:
      (void)ov.report_dead_provider(a.initiator, a.pattern, a.dead, a.when);
      break;
  }
}

}  // namespace

bool parallel_batch_eligible(const BatchOptions& opts,
                             const obs::QueryTrace* trace,
                             std::size_t batch_size) noexcept {
  if (opts.workers <= 1) return false;
  if (batch_size < 2) return false;
  if (trace != nullptr) return false;
  if (opts.service.service_ms > 0) return false;
  if (!opts.injections.empty() && !opts.injection_factory) return false;
  return true;
}

BatchResult run_parallel_batch(overlay::HybridOverlay& overlay,
                               const ExecutionPolicy& policy,
                               const std::vector<BatchQuery>& batch,
                               const BatchOptions& opts) {
  assert(parallel_batch_eligible(opts, nullptr, batch.size()) &&
         "run_parallel_batch: caller must check eligibility");
  const std::size_t workers = std::min<std::size_t>(
      static_cast<std::size_t>(opts.workers), batch.size());

  // -- partition: qid % workers (the documented rule) -----------------------
  std::vector<Shard> shards(workers);
  for (std::size_t qid = 0; qid < batch.size(); ++qid) {
    Shard& s = shards[qid % workers];
    s.queries.push_back(batch[qid]);
    s.qids.push_back(static_cast<std::uint32_t>(qid));
  }

  // -- clone: each worker gets a private copy of the world ------------------
  // Clones are built serially on the master thread; injection factories may
  // consult master-side structures (the fault harness's schedule) while
  // binding their events to the clone.
  for (Shard& s : shards) {
    s.network = overlay.network();
    s.network.set_tracer(nullptr);
    s.network.set_timeout_tracer(nullptr);
    s.overlay = overlay.clone_for_worker(s.network);
    s.opts.service = opts.service;
    s.opts.label_query_ids = opts.label_query_ids;
    if (opts.injection_factory) {
      // Faults are broadcast: every shard observes the full schedule on its
      // own world, so cross-shard queries see identical failure timelines.
      s.opts.injections = opts.injection_factory(*s.overlay);
    }
  }

  // -- execute shards on worker threads ------------------------------------
  // ahsw-lint: allow(D1) see file header — shard runs are deterministic and
  // share nothing; thread scheduling cannot reorder any simulated event.
  std::vector<std::thread> pool;
  pool.reserve(shards.size());
  for (Shard& s : shards) {
    // ahsw-lint: allow(D1) one deterministic shard per thread.
    pool.emplace_back([&s, &policy]() {
      DagExecutor exec(*s.overlay, policy, nullptr, s.opts);
      exec.set_state_log(&s.log);
      s.result = exec.run(s.queries, s.qids);
    });
  }
  for (std::thread& t : pool) t.join();  // ahsw-lint: allow(D1) barrier only

  // -- merge: replay shard mutations + master injections in serial order ---
  std::vector<MergeEntry> entries;
  std::size_t total_actions = 0;
  for (const Shard& s : shards) total_actions += s.log.size();
  entries.reserve(total_actions + opts.injections.size());
  for (const Shard& s : shards) {
    for (const StateAction& a : s.log) {
      entries.push_back(MergeEntry{a.at, a.qid, a.task, a.seq, &a});
    }
  }
  for (std::size_t i = 0; i < opts.injections.size(); ++i) {
    entries.push_back(MergeEntry{opts.injections[i].at,
                                 net::kInjectionQueryId,
                                 static_cast<std::uint32_t>(i), 0, nullptr});
  }
  std::sort(entries.begin(), entries.end(), merge_less);

  net::Network& net = overlay.network();
  const net::Network::Tracer tracer = net.tracer();
  const net::Network::TimeoutTracer timeout_tracer = net.timeout_tracer();
  for (const MergeEntry& e : entries) {
    if (e.action == nullptr) {
      // Master-bound injection: charges traffic and notifies tracers
      // exactly as the serial event loop would.
      const InjectedEvent& inj = opts.injections[e.task];
      if (inj.apply) inj.apply(e.at);
      continue;
    }
    // State-action replay: the shard already charged this mutation's
    // traffic into its query's report (fire() delta accounting), so the
    // master replay must not re-charge it — or re-notify observers.
    const net::TrafficStats saved = net.stats();
    net.set_tracer(nullptr);
    net.set_timeout_tracer(nullptr);
    replay_action(overlay, *e.action);
    net.set_tracer(tracer);
    net.set_timeout_tracer(timeout_tracer);
    net.restore_stats(saved);
  }

  // Lazy re-attachment is the one shard-side mutation outside the log: an
  // initiator whose index node died re-attached to the first live ring node
  // *at lookup time*. Adopt each shard's final attachment for its own
  // initiators so a later batch re-attaches from the same state serial
  // execution would have left.
  for (const Shard& s : shards) {
    for (const BatchQuery& q : s.queries) {
      if (!overlay.is_storage_node(q.initiator)) continue;
      overlay.storage_state(q.initiator).attached_index =
          s.overlay->storage_state(q.initiator).attached_index;
    }
  }

  // -- assemble: per-query outputs slot back by id --------------------------
  BatchResult out;
  out.results.resize(batch.size());
  out.reports.resize(batch.size());
  out.root_spans.assign(batch.size(), obs::kNoSpan);
  out.worker_makespans.assign(shards.size(), 0.0);
  for (std::size_t w = 0; w < shards.size(); ++w) {
    Shard& s = shards[w];
    out.worker_makespans[w] = s.result.makespan;
    out.makespan = std::max(out.makespan, s.result.makespan);
    for (std::size_t i = 0; i < s.qids.size(); ++i) {
      out.results[s.qids[i]] = std::move(s.result.results[i]);
      out.reports[s.qids[i]] = std::move(s.result.reports[i]);
    }
  }

  // Master traffic total = pre-batch counters + injection charges (already
  // applied above) + every query's report delta — the same decomposition
  // the serial driver's per-fire accounting produces.
  net::TrafficStats total = net.stats();
  for (const ExecutionReport& rep : out.reports) {
    total.accumulate(rep.traffic);
  }
  net.restore_stats(total);

  return out;
}

}  // namespace ahsw::dqp
