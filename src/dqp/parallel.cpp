#include "dqp/parallel.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <mutex>
// ahsw-lint: allow(D1) worker threads carry no simulated time: each shard is
// a self-contained deterministic sub-simulation on a cloned overlay, and the
// merge below fixes the global order by (time, query, task) — the scheduler
// still models all parallelism; threads only shrink wall-clock time.
#include <thread>

#include "dqp/executor.hpp"

namespace ahsw::dqp {

namespace {

/// The mutex guarding the worker -> master StateLog handoff, annotated for
/// clang's -Wthread-safety analysis (no-op wrappers elsewhere).
class AHSW_CAPABILITY("mutex") DepositMutex {
 public:
  void lock() AHSW_ACQUIRE() { mu_.lock(); }
  void unlock() AHSW_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// Scoped acquisition of a DepositMutex (std::lock_guard cannot carry the
/// AHSW_SCOPED_CAPABILITY annotation).
class AHSW_SCOPED_CAPABILITY DepositLock {
 public:
  explicit DepositLock(DepositMutex& mu) AHSW_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~DepositLock() AHSW_RELEASE() { mu_.unlock(); }
  DepositLock(const DepositLock&) = delete;
  DepositLock& operator=(const DepositLock&) = delete;

 private:
  DepositMutex& mu_;
};

/// Collects each worker's completed StateLog on the master. The deposit is
/// the one point where worker threads write shared memory, so it is the one
/// place that needs a lock: workers finish in wall-clock order, the master
/// drains in worker order after the join barrier, and the (time, query,
/// task) merge below re-establishes the serial order regardless.
class StateLogDeposit {
 public:
  explicit StateLogDeposit(std::size_t workers) {
    DepositLock lock(mu_);
    logs_.resize(workers);
  }

  void deposit(std::size_t worker, StateLog log) {
    DepositLock lock(mu_);
    logs_[worker] = std::move(log);
  }

  /// Master-side drain; call after every worker has joined.
  [[nodiscard]] std::vector<StateLog> drain() {
    DepositLock lock(mu_);
    return std::move(logs_);
  }

 private:
  DepositMutex mu_;
  // ahsw-lint: guarded_by(mu_) one slot per worker, written cross-thread
  std::vector<StateLog> logs_ AHSW_GUARDED_BY(mu_);
};

/// One worker's world: a private copy of the network + overlay, the shard's
/// queries with their original batch-wide ids, and (for traced batches) the
/// shard-local span forest the master grafts. Declared after `network` so
/// the trace unbinds before its network dies.
struct Shard {
  std::vector<BatchQuery> queries;
  std::vector<std::uint32_t> qids;
  net::Network network;
  std::unique_ptr<overlay::HybridOverlay> overlay;
  BatchOptions opts;
  BatchResult result;
  obs::QueryTrace trace;
};

/// Merge-order key: state actions carry their enclosing fire's event key;
/// injections sort under the reserved injection query id exactly as the
/// serial event loop pops them. `action == nullptr` marks an injection
/// (task = injection index).
struct MergeEntry {
  net::SimTime at = 0;
  std::uint32_t qid = 0;
  std::uint32_t task = 0;
  std::uint32_t seq = 0;
  const StateAction* action = nullptr;
};

[[nodiscard]] bool merge_less(const MergeEntry& a,
                              const MergeEntry& b) noexcept {
  if (a.at != b.at) return a.at < b.at;
  if (a.qid != b.qid) return a.qid < b.qid;
  if (a.task != b.task) return a.task < b.task;
  return a.seq < b.seq;
}

/// Re-apply one recorded shard mutation on the master overlay. Must mirror
/// the executor's own calls exactly (src/dqp/executor.cpp recording sites):
/// the replay reproduces the serial driver's overlay end state, including
/// cache rows, access counts, lease subscriptions and table tombstones.
void replay_action(overlay::HybridOverlay& ov, const StateAction& a) {
  switch (a.kind) {
    case StateAction::Kind::kCacheLookup:
      (void)ov.cache_for(a.initiator).lookup(a.key, a.when);
      break;
    case StateAction::Kind::kCacheInsert:
      (void)ov.cache_for(a.initiator)
          .insert(a.key, a.providers, a.index_node, a.fetched_at);
      break;
    case StateAction::Kind::kSubscribe:
      ov.subscribe_invalidations(a.key, a.initiator);
      break;
    case StateAction::Kind::kCacheInvalidate:
      (void)ov.cache_for(a.initiator).invalidate(a.key);
      break;
    case StateAction::Kind::kReportDead:
      (void)ov.report_dead_provider(a.initiator, a.pattern, a.dead, a.when);
      break;
  }
}

}  // namespace

bool parallel_batch_eligible(const BatchOptions& opts, std::size_t batch_size,
                             std::string* reason) noexcept {
  const auto reject = [reason](const char* why) {
    if (reason != nullptr) *reason = why;
    return false;
  };
  if (opts.workers <= 1) return reject("workers=1");
  if (batch_size < 2) return reject("single-query batch");
  if (opts.service.service_ms > 0) return reject("service model on");
  if (!opts.injections.empty() && !opts.injection_factory) {
    return reject("injections without factory");
  }
  return true;
}

BatchResult run_parallel_batch(overlay::HybridOverlay& overlay,
                               const ExecutionPolicy& policy,
                               const std::vector<BatchQuery>& batch,
                               const BatchOptions& opts,
                               obs::QueryTrace* trace) {
  assert(parallel_batch_eligible(opts, batch.size()) &&
         "run_parallel_batch: caller must check eligibility");
  const std::size_t workers = std::min<std::size_t>(
      static_cast<std::size_t>(opts.workers), batch.size());

  // -- partition: qid % workers (the documented rule) -----------------------
  std::vector<Shard> shards(workers);
  for (std::size_t qid = 0; qid < batch.size(); ++qid) {
    Shard& s = shards[qid % workers];
    s.queries.push_back(batch[qid]);
    s.qids.push_back(static_cast<std::uint32_t>(qid));
  }

  // -- clone: each worker gets a private copy of the world ------------------
  // Clones are built serially on the master thread; injection factories may
  // consult master-side structures (the fault harness's schedule) while
  // binding their events to the clone.
  for (Shard& s : shards) {
    s.network = overlay.network();
    s.network.set_tracer(nullptr);
    s.network.set_timeout_tracer(nullptr);
    // Traced batch: the shard records its spans into a private trace bound
    // to the cloned network. Worker-side injection applications charge
    // while no span is open, land in the private trace's unattributed
    // counters, and are discarded — the master replay below re-charges
    // them once, against the caller's trace, exactly as a serial run.
    if (trace != nullptr) s.trace.bind(s.network);
    // Cloning after binding: clone-construction traffic (none today) would
    // land unattributed in the shard trace, never in a query span.
    s.overlay = overlay.clone_for_worker(s.network);
    // clone_for_worker drops the master's trace pointer; re-attach the
    // shard-private one so the clone's lookups/repairs open their nested
    // spans in the shard forest, exactly as the master overlay does when
    // the serial driver runs traced.
    if (trace != nullptr) s.overlay->set_trace(&s.trace);
    s.opts.service = opts.service;
    s.opts.label_query_ids = opts.label_query_ids;
    if (opts.injection_factory) {
      // Faults are broadcast: every shard observes the full schedule on its
      // own world, so cross-shard queries see identical failure timelines.
      s.opts.injections = opts.injection_factory(*s.overlay);
    }
  }

  // -- execute shards on worker threads ------------------------------------
  StateLogDeposit deposit(shards.size());
  // ahsw-lint: allow(D1) see file header — shard runs are deterministic and
  // share nothing; thread scheduling cannot reorder any simulated event.
  std::vector<std::thread> pool;
  pool.reserve(shards.size());
  for (std::size_t w = 0; w < shards.size(); ++w) {
    Shard& s = shards[w];
    // ahsw-lint: allow(D1) one deterministic shard per thread.
    pool.emplace_back([&s, &policy, &deposit, trace, w]() {
      StateLog log;
      DagExecutor exec(*s.overlay, policy,
                       trace != nullptr ? &s.trace : nullptr, s.opts);
      exec.set_state_log(&log);
      s.result = exec.run(s.queries, s.qids);
      deposit.deposit(w, std::move(log));
    });
  }
  for (std::thread& t : pool) t.join();  // ahsw-lint: allow(D1) barrier only
  const std::vector<StateLog> logs = deposit.drain();

  // -- merge: replay shard mutations + master injections in serial order ---
  std::vector<MergeEntry> entries;
  std::size_t total_actions = 0;
  for (const StateLog& log : logs) total_actions += log.size();
  entries.reserve(total_actions + opts.injections.size());
  for (const StateLog& log : logs) {
    for (const StateAction& a : log) {
      entries.push_back(MergeEntry{a.at, a.qid, a.task, a.seq, &a});
    }
  }
  for (std::size_t i = 0; i < opts.injections.size(); ++i) {
    entries.push_back(MergeEntry{opts.injections[i].at,
                                 net::kInjectionQueryId,
                                 static_cast<std::uint32_t>(i), 0, nullptr});
  }
  std::sort(entries.begin(), entries.end(), merge_less);

  // Traced batch: graft each query's span subtree from its shard's private
  // trace onto the caller's, in query-id order — before the replay below,
  // because the serial driver opens every query root at setup (t = 0) and
  // only then applies injections, and the merged forest must list its
  // roots in that same order. Span ids are remapped by the graft;
  // root_spans carries the master-side ids.
  std::vector<obs::SpanId> merged_roots(batch.size(), obs::kNoSpan);
  if (trace != nullptr) {
    for (std::size_t qid = 0; qid < batch.size(); ++qid) {
      const Shard& s = shards[qid % workers];
      const obs::SpanId root = s.result.root_spans[qid / workers];
      if (root == obs::kNoSpan) continue;
      merged_roots[qid] = trace->adopt_subtree(s.trace, root);
    }
  }

  net::Network& net = overlay.network();
  const net::Network::Tracer tracer = net.tracer();
  const net::Network::TimeoutTracer timeout_tracer = net.timeout_tracer();
  for (const MergeEntry& e : entries) {
    if (e.action == nullptr) {
      // Master-bound injection: charges traffic, notifies tracers, and
      // opens overlay spans (repair rounds) exactly as the serial event
      // loop would — with no span open they become roots, in time order.
      const InjectedEvent& inj = opts.injections[e.task];
      if (inj.apply) inj.apply(e.at);
      continue;
    }
    // State-action replay: the shard already charged this mutation's
    // traffic into its query's report (fire() delta accounting) and
    // recorded its spans in the shard forest grafted above, so the master
    // replay must not re-charge, re-notify observers, or re-open spans —
    // the overlay's trace detaches along with the network tracers.
    const net::TrafficStats saved = net.stats();
    net.set_tracer(nullptr);
    net.set_timeout_tracer(nullptr);
    if (trace != nullptr) overlay.set_trace(nullptr);
    replay_action(overlay, *e.action);
    if (trace != nullptr) overlay.set_trace(trace);
    net.set_tracer(tracer);
    net.set_timeout_tracer(timeout_tracer);
    net.restore_stats(saved);
  }

  // Lazy re-attachment is the one shard-side mutation outside the log: an
  // initiator whose index node died re-attached to the first live ring node
  // *at lookup time*. Adopt each shard's final attachment for its own
  // initiators so a later batch re-attaches from the same state serial
  // execution would have left.
  for (const Shard& s : shards) {
    for (const BatchQuery& q : s.queries) {
      if (!overlay.is_storage_node(q.initiator)) continue;
      overlay.storage_state(q.initiator).attached_index =
          s.overlay->storage_state(q.initiator).attached_index;
    }
  }

  // -- assemble: per-query outputs slot back by id --------------------------
  BatchResult out;
  out.results.resize(batch.size());
  out.reports.resize(batch.size());
  out.root_spans.assign(batch.size(), obs::kNoSpan);
  out.worker_makespans.assign(shards.size(), 0.0);
  for (std::size_t w = 0; w < shards.size(); ++w) {
    Shard& s = shards[w];
    out.worker_makespans[w] = s.result.makespan;
    out.makespan = std::max(out.makespan, s.result.makespan);
    for (std::size_t i = 0; i < s.qids.size(); ++i) {
      out.results[s.qids[i]] = std::move(s.result.results[i]);
      out.reports[s.qids[i]] = std::move(s.result.reports[i]);
    }
  }

  out.root_spans = std::move(merged_roots);

  // Master traffic total = pre-batch counters + injection charges (already
  // applied above) + every query's report delta — the same decomposition
  // the serial driver's per-fire accounting produces.
  net::TrafficStats total = net.stats();
  for (const ExecutionReport& rep : out.reports) {
    total.accumulate(rep.traffic);
  }
  net.restore_stats(total);

  return out;
}

}  // namespace ahsw::dqp
