// Deterministic event-driven executor for physical plans.
//
// Runs N queries concurrently through one scheduler: every operator of
// every plan becomes a task; a task becomes ready when all of its inputs
// (data and control) have finished; ready events pop in (time, query, task)
// order from net::EventQueue, so a batch replays bit-for-bit.
//
// Two invariants tie the executor to the legacy recursive engine:
//
//   1. *Value identity.* Every task computes its output with exactly the
//      legacy formulas — same logical start times (all subtrees of one
//      query start at t=0, DESCRIBE parts at the result's arrival), same
//      merge/dedup canonicalization, same traffic charges. Event order only
//      decides *when* a charge is booked, never how large it is, so
//      single-query DAG runs reproduce legacy results, TrafficStats and
//      response times exactly (the A/B equivalence tests pin this).
//
//   2. *State-mutation order.* Lazy index repairs mutate shared overlay
//      state; the plan's control edges serialize each query's fires into
//      the legacy left-to-right order so repairs and lookups interleave
//      identically.
//
// Dynamic expansion: chain hops, scatter legs and DESCRIBE part queries
// depend on runtime information (provider lists, join order, result
// bindings), so those tasks are spawned at fire time; their ids are
// assigned in deterministic creation order.
//
// Contention: with BatchOptions::service.service_ms > 0, a provider node
// serving one query delays work arriving from *other* queries until it is
// free (per-node busy-until bookkeeping). The default 0 disables the model,
// keeping single-query execution byte-identical.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "dqp/processor.hpp"
#include "net/event_queue.hpp"

namespace ahsw::dqp {

/// One shared-overlay mutation performed by the executor on behalf of a
/// query, recorded so the parallel batch driver can replay worker-shard
/// side effects onto the master overlay in the serial driver's global
/// (time, query, task) order. The ordering key is the *enclosing fire's*
/// event key — the serial scheduler orders whole fires, and mutations
/// within one fire happen in program order (`seq` preserves it across the
/// merge). `when` is the simulated time the mutation itself used.
struct StateAction {
  enum class Kind : std::uint8_t {
    kCacheLookup,      // cache_for(initiator).lookup(key, when)
    kCacheInsert,      // cache_for(initiator).insert(key, providers, ...)
    kSubscribe,        // subscribe_invalidations(key, initiator)
    kCacheInvalidate,  // cache_for(initiator).invalidate(key)
    kReportDead,       // report_dead_provider(initiator, pattern, dead, when)
  };
  Kind kind = Kind::kCacheLookup;
  net::SimTime at = 0;        // enclosing fire's event time
  std::uint32_t qid = 0;      // enclosing fire's query id
  std::uint32_t task = 0;     // enclosing fire's task id
  std::uint32_t seq = 0;      // program order within the fire / worker log
  net::SimTime when = 0;      // sim time the mutation was issued at
  net::NodeAddress initiator = net::kNoAddress;
  net::NodeAddress dead = net::kNoAddress;  // kReportDead: the dead provider
  rdf::TriplePattern pattern;               // kReportDead: reported pattern
  chord::Key key = 0;                       // cache row key
  chord::Key index_node = 0;                // kCacheInsert: serving owner
  net::SimTime fetched_at = 0;              // kCacheInsert: snapshot time
  std::vector<overlay::Provider> providers; // kCacheInsert: row snapshot
};

/// Ordered per-worker log of shared-state mutations (append-only; already
/// sorted by (at, qid, task, seq) because the worker's event loop is).
using StateLog = std::vector<StateAction>;

class DagExecutor {
 public:
  DagExecutor(overlay::HybridOverlay& ov, ExecutionPolicy policy,
              obs::QueryTrace* trace, BatchOptions opts = {})
      : overlay_(&ov), policy_(policy), trace_(trace),
        opts_(std::move(opts)) {}

  /// Execute the batch to completion; returns per-query results/reports in
  /// batch order plus the batch makespan.
  [[nodiscard]] BatchResult run(const std::vector<BatchQuery>& batch);

  /// Worker-shard entry point: run `batch` with externally assigned query
  /// ids (`qids[i]` is batch[i]'s id in the full batch; sizes must match).
  /// Event ordering, claim() bookkeeping and span labels all use the
  /// original ids, so a shard interleaves exactly as its queries would in
  /// the full serial batch.
  [[nodiscard]] BatchResult run(const std::vector<BatchQuery>& batch,
                                const std::vector<std::uint32_t>& qids);

  /// Record every shared-overlay mutation into `log` (nullptr disables).
  /// The parallel driver replays the log on the master overlay.
  void set_state_log(StateLog* log) noexcept { state_log_ = log; }

 private:
  /// An intermediate solution set living at a node of the overlay.
  struct Located {
    sparql::SolutionSet set;
    net::NodeAddress site = net::kNoAddress;
    net::SimTime ready_at = 0;
  };

  using TaskId = std::uint32_t;
  static constexpr TaskId kNoTask = 0xffffffffu;

  enum class TaskKind : std::uint8_t {
    kConst,
    kLookup,
    kScan,         // one pattern under its strategy (static or DESCRIBE part)
    kScatterLeg,   // dynamic: one provider of a scatter/gather pattern
    kChainHop,     // dynamic: one provider visit of a chain
    kRelookup,     // dynamic: lazy-repair re-lookup after provider exhaustion
    kShip,
    kJoin,
    kLeftJoin,
    kUnion,
    kMinus,
    kFilter,
    kModifier,
    kPostProcess,
    kDescribeGather,  // dynamic: assemble DESCRIBE part results
  };

  /// Runtime state shared by the slots of one conjunction (owned by slot 0).
  struct GroupState {
    std::vector<std::size_t> order;  // join order over bgp positions
  };

  /// One schedulable unit. Static tasks mirror plan ops one-to-one (task id
  /// == op id); dynamic tasks carry their payload inline (op == kNoOp).
  struct Task {
    TaskKind kind = TaskKind::kConst;
    OpId op = kNoOp;
    std::vector<TaskId> deps;
    std::vector<TaskId> dependents;
    std::uint32_t pending = 0;
    bool done = false;
    net::SimTime base = 0;     // earliest logical start (0 / DESCRIBE t0)
    net::SimTime finish = 0;   // when done: drives dependents' event times
    obs::SpanId parent_span = obs::kNoSpan;  // reopened around this fire

    Located out;
    overlay::HybridOverlay::Located loc;  // kLookup output

    // Dynamic payloads / runtime scan state.
    sparql::BgpPattern pattern;
    TaskId scan = kNoTask;      // kScatterLeg / kChainHop / kRelookup: owner
    std::size_t position = 0;   // provider index within the scan
    int attempt = 0;            // leg/hop: contacts of this slot so far
    bool quiet_ship = false;    // kShip without a span (DESCRIBE parts)
    net::Category ship_category = net::Category::kResult;
    net::NodeAddress ship_target = net::kNoAddress;

    std::unique_ptr<GroupState> group;  // kScan slot 0 of a conjunction
    obs::SpanId pattern_span = obs::kNoSpan;
    bool has_carry = false;
    Located carry;
    std::size_t carry_bytes = 0;      // wire (charged) size of the carry
    std::size_t carry_raw_bytes = 0;  // uncompressed counterpart
    net::NodeAddress assembly = net::kNoAddress;
    std::size_t remaining = 0;               // outstanding scatter legs
    sparql::SolutionSet merged;              // scatter merge accumulator
    net::SimTime done_at = 0;                // scatter completion max
    std::vector<overlay::Provider> chain;    // providers in visit order
    sparql::SolutionSet acc;                 // chain accumulator
    net::SimTime t = 0;                      // chain clock / scatter start
    net::NodeAddress sender = net::kNoAddress;
    net::NodeAddress site = net::kNoAddress;
    std::size_t failed_contacts = 0;  // scan: providers given up on
    bool relooked = false;            // scan: lazy re-lookup already spent
    optimizer::PrimitiveStrategy strategy =
        optimizer::PrimitiveStrategy::kBasic;  // scan: chosen at fire time

    std::vector<TaskId> parts;       // kDescribeGather: part ships in order
    std::vector<rdf::Term> targets;  // kDescribeGather: described terms
  };

  struct QueryRun {
    std::uint32_t qid = 0;
    sparql::Query query;
    net::NodeAddress initiator = net::kNoAddress;
    PhysicalPlan plan;
    std::deque<Task> tasks;  // deque: fires append while holding references
    ExecutionReport rep;
    obs::SpanId root_span = obs::kNoSpan;
    sparql::QueryResult result;
    TaskId final_task = kNoTask;
  };

  // Setup.
  void setup_query(QueryRun& run);
  TaskId add_task(QueryRun& run, Task t);
  void schedule(QueryRun& run, TaskId id);
  void complete(QueryRun& run, TaskId id, net::SimTime finish);

  // Firing. Each fire_* returns the end hint folded into the parent span's
  // close (0 when children already extended it).
  void fire(QueryRun& run, TaskId id);
  net::SimTime fire_lookup(QueryRun& run, TaskId id);
  net::SimTime fire_scan(QueryRun& run, TaskId id);
  net::SimTime fire_scatter_leg(QueryRun& run, TaskId id);
  net::SimTime fire_chain_hop(QueryRun& run, TaskId id);
  net::SimTime fire_relookup(QueryRun& run, TaskId id);
  net::SimTime fire_ship(QueryRun& run, TaskId id);
  net::SimTime fire_binary(QueryRun& run, TaskId id);
  net::SimTime fire_filter(QueryRun& run, TaskId id);
  net::SimTime fire_modifier(QueryRun& run, TaskId id);
  net::SimTime fire_post(QueryRun& run, TaskId id);
  net::SimTime fire_describe_gather(QueryRun& run, TaskId id);

  // Legacy-identical primitives (same formulas as the recursive engine).
  overlay::HybridOverlay::Located locate(const rdf::TriplePattern& p,
                                         net::NodeAddress initiator,
                                         net::SimTime now,
                                         ExecutionReport& rep);
  Located ship(Located from, net::NodeAddress target, net::Category category);
  /// Contact a provider: charges a timeout and returns nullopt when it is
  /// dead, without giving up on it — the caller decides between a retry
  /// (RetryPolicy) and `give_up_on_provider`.
  std::optional<sparql::SolutionSet> run_at_provider(
      net::NodeAddress provider, const sparql::BgpPattern& p,
      net::SimTime& now, net::NodeAddress initiator, ExecutionReport& rep);
  /// Final failure handling for a dead provider: count the skip and trigger
  /// the paper's lazy index repair. With retries off, every contact failure
  /// is final, reproducing the pre-retry behavior exactly.
  void give_up_on_provider(net::NodeAddress provider,
                           const sparql::BgpPattern& p, net::SimTime now,
                           net::NodeAddress initiator, ExecutionReport& rep);
  /// Spawn the scan's one lazy-repair re-lookup task at `at`. It pops after
  /// any injected recovery stamped before `at`, so a re-lookup can see
  /// providers that came back while the scan was timing out.
  void spawn_relookup(QueryRun& run, TaskId scan_id, net::SimTime at);
  std::pair<Located, Located> colocate(Located a, Located b,
                                       net::NodeAddress initiator,
                                       ExecutionReport& rep);

  /// Service model: delay `at` until `node` is free of other queries' work,
  /// then occupy it for service_ms. Identity when the model is disabled.
  net::SimTime claim(net::NodeAddress node, std::uint32_t qid,
                     net::SimTime at);

  // Span plumbing for the interleaved DAG: firings of different queries
  // interleave arbitrarily, so a task's enclosing span is re-entered around
  // each fire instead of being held open by one RAII scope. These three
  // helpers are the only sanctioned manual QueryTrace calls outside
  // SpanScope (rule O1); each is a no-op without a bound trace, and fire()
  // balances every open/reopen with a close.
  obs::SpanId open_span(obs::SpanKind kind, std::string label,
                        net::SimTime at, net::NodeAddress site);
  void close_span(obs::SpanId span, net::SimTime end);
  void reopen_span(obs::SpanId span);

  [[nodiscard]] net::Network& net() { return overlay_->network(); }

  /// Append `a` to the state log (no-op without one), stamping the
  /// enclosing fire's (at, qid, task) ordering key and the next seq.
  void record(StateAction a);

  overlay::HybridOverlay* overlay_;
  ExecutionPolicy policy_;
  obs::QueryTrace* trace_;
  BatchOptions opts_;
  net::EventQueue queue_;
  std::deque<QueryRun> runs_;  // deque: QueryRun is pinned (not movable)
  /// Dense map query id -> index into runs_ (identity for plain batches;
  /// sparse shard ids for worker runs).
  std::vector<std::uint32_t> run_of_qid_;
  StateLog* state_log_ = nullptr;
  net::SimTime fire_at_ = 0;       // event time of the fire in progress
  std::uint32_t fire_qid_ = 0;     // query id of the fire in progress
  std::uint32_t fire_task_ = 0;    // task id of the fire in progress
  std::uint32_t fire_seq_ = 0;     // next StateAction seq
  /// node -> (busy until, last claimant qid + 1). Ordered map for
  /// deterministic bookkeeping.
  std::map<net::NodeAddress, std::pair<net::SimTime, std::uint32_t>> busy_;
};

}  // namespace ahsw::dqp
