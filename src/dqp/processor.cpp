#include "dqp/processor.hpp"

#include <algorithm>
#include <cassert>

#include "dqp/executor.hpp"
#include "dqp/parallel.hpp"
#include "net/wire.hpp"
#include "obs/explain.hpp"
#include "sparql/ast.hpp"

namespace ahsw::dqp {

using optimizer::JoinSitePolicy;
using optimizer::PrimitiveStrategy;
using sparql::Algebra;
using sparql::AlgebraKind;
using sparql::AlgebraPtr;
using sparql::Binding;
using sparql::SolutionSet;

namespace {

[[nodiscard]] std::string_view form_name(sparql::QueryForm f) {
  switch (f) {
    case sparql::QueryForm::kSelect: return "SELECT";
    case sparql::QueryForm::kConstruct: return "CONSTRUCT";
    case sparql::QueryForm::kAsk: return "ASK";
    case sparql::QueryForm::kDescribe: return "DESCRIBE";
  }
  return "?";
}

/// Move `end` to the back of `chain` if present (chains may be asked to
/// finish at an overlap node; relative order of the rest is preserved).
void rotate_end_to_back(std::vector<overlay::Provider>& chain,
                        net::NodeAddress end) {
  auto it = std::find_if(
      chain.begin(), chain.end(),
      [&](const overlay::Provider& p) { return p.address == end; });
  if (it == chain.end()) return;
  overlay::Provider saved = *it;
  chain.erase(it);
  chain.push_back(saved);
}

}  // namespace

sparql::AlgebraPtr DistributedQueryProcessor::plan(
    std::string_view query_text) const {
  sparql::Query q = sparql::parse_query(query_text);
  AlgebraPtr a = sparql::translate_pattern(q.where);
  if (policy_.push_filters) a = optimizer::push_filters(a);
  return a;
}

overlay::HybridOverlay::Located DistributedQueryProcessor::locate(
    const rdf::TriplePattern& p, net::NodeAddress initiator, net::SimTime now,
    ExecutionReport& rep) {
  overlay::HybridOverlay::Located loc = overlay_->locate(initiator, p, now);
  ++rep.index_lookups;
  rep.ring_hops += loc.hops;
  if (!loc.ok) rep.complete = false;
  return loc;
}

DistributedQueryProcessor::Located DistributedQueryProcessor::ship(
    Located from, net::NodeAddress target, ExecutionReport& rep,
    net::Category category) {
  (void)rep;
  if (from.site == target) return from;
  from.ready_at = overlay_->network().send(
      from.site, target, net::wire::charged_bytes(from.set), from.ready_at,
      category, from.set.byte_size());
  from.site = target;
  return from;
}

std::optional<sparql::SolutionSet> DistributedQueryProcessor::run_at_provider(
    net::NodeAddress provider, const sparql::BgpPattern& p, net::SimTime& now,
    net::NodeAddress initiator, ExecutionReport& rep) {
  if (overlay_->network().is_failed(provider)) {
    // Stale location-table entry (Sect. III-D): the contact times out and
    // the reporter triggers lazy repair at the owning index node. The
    // timeout is charged against the dead provider under the query
    // category, so traces and per-category stats show who stalled us.
    now = overlay_->network().timeout(now, provider, net::Category::kQuery);
    ++rep.dead_providers_skipped;
    overlay_->report_dead_provider(initiator, p.pattern, provider, now);
    return std::nullopt;
  }
  ++rep.providers_contacted;
  sparql::LocalEngine engine(overlay_->store_of(provider), policy_.vectorized);
  return engine.match_pattern(p);
}

DistributedQueryProcessor::Located DistributedQueryProcessor::exec_pattern(
    const sparql::BgpPattern& p, const overlay::HybridOverlay::Located& loc,
    net::NodeAddress initiator, ExecutionReport& rep,
    std::optional<net::NodeAddress> preferred_end, const Located* carry) {
  net::Network& net = overlay_->network();
  net::SimTime now = loc.completed_at;

  // No providers: the answer is empty (join with carry is empty too).
  if (loc.providers.empty()) {
    Located out;
    out.site = carry != nullptr ? carry->site : initiator;
    out.ready_at = std::max(now, carry != nullptr ? carry->ready_at : now);
    return out;
  }

  obs::SpanScope pattern_span(trace_, obs::SpanKind::kPattern,
                              p.pattern.to_string(), now, initiator);

  PrimitiveStrategy strategy = policy_.primitive;
  if (policy_.adaptive && !loc.broadcast && loc.providers.size() > 1) {
    strategy = optimizer::choose_primitive_strategy(
        loc.providers, net.cost_model(), policy_.objectives);
    rep.plan_notes.push_back(
        std::string("adaptive: ") + p.pattern.to_string() + " -> " +
        std::string(optimizer::primitive_strategy_name(strategy)));
  }

  const bool scatter_gather =
      strategy == PrimitiveStrategy::kBasic || loc.broadcast;

  if (scatter_gather) {
    // Basic strategy (Sect. IV-C): the index node is the assembly site; all
    // providers evaluate in parallel and ship their mappings to it. A
    // broadcast (fully unbound) pattern floods from the initiator instead.
    net::NodeAddress assembly =
        loc.broadcast ? initiator
                      : overlay_->ring().contains(loc.index_node)
                            ? overlay_->ring().address_of(loc.index_node)
                            : initiator;
    SolutionSet merged;
    net::SimTime done = now;
    for (const overlay::Provider& prov : loc.providers) {
      net::SimTime t;
      {
        obs::SpanScope ship_span(trace_, obs::SpanKind::kSubQueryShip,
                                 "to node " + std::to_string(prov.address),
                                 now, assembly);
        t = net.send(assembly, prov.address, subquery_wire_bytes(p), now,
                     net::Category::kQuery);
        ship_span.finish(t);
      }
      obs::SpanScope exec_span(trace_, obs::SpanKind::kLocalExec,
                               "node " + std::to_string(prov.address), t,
                               prov.address);
      std::optional<SolutionSet> local =
          run_at_provider(prov.address, p, t, initiator, rep);
      if (!local.has_value()) {
        exec_span.finish(t);
        done = std::max(done, t);
        continue;
      }
      t = net.send(prov.address, assembly, net::wire::charged_bytes(*local),
                   t, net::Category::kData, local->byte_size());
      exec_span.finish(t);
      merged = sparql::deduplicated(sparql::set_union(merged, *local),
                                    policy_.vectorized);
      done = std::max(done, t);
    }
    Located out;
    out.set = std::move(merged);
    out.site = assembly;
    out.ready_at = done;
    if (carry != nullptr) {
      // Conjunction under the basic plan: ship the carried mappings to the
      // assembly site and join there (the N4 -> N15 pattern of Sect. IV-D).
      obs::SpanScope ship_span(trace_, obs::SpanKind::kShip,
                               "carry to assembly", carry->ready_at, assembly);
      Located c = ship(*carry, assembly, rep);
      ship_span.finish(c.ready_at);
      out.set = sparql::join(c.set, out.set, policy_.vectorized);
      out.ready_at = std::max(out.ready_at, c.ready_at);
    }
    pattern_span.finish(out.ready_at);
    return out;
  }

  // Chain strategies (Sect. IV-C optimization / further optimization):
  // the query travels a provider chain; every provider merges its local
  // mappings into the travelling set (in-network aggregation). With a
  // carried set, every provider joins its matches against it (IV-D).
  std::vector<overlay::Provider> chain =
      optimizer::chain_order(loc.providers, strategy);
  if (policy_.overlap_aware_sites && preferred_end.has_value()) {
    rotate_end_to_back(chain, *preferred_end);
  }

  net::NodeAddress owner_addr = overlay_->ring().contains(loc.index_node)
                                    ? overlay_->ring().address_of(loc.index_node)
                                    : initiator;
  // The index node forwards the sub-query (with the chain list) to the
  // first provider; the carried set (if any) travels from its site there.
  net::SimTime t;
  std::size_t carry_bytes = 0;
  std::size_t carry_raw_bytes = 0;
  {
    obs::SpanScope ship_span(trace_, obs::SpanKind::kSubQueryShip,
                             "to node " + std::to_string(chain.front().address),
                             now, owner_addr);
    t = net.send(owner_addr, chain.front().address, subquery_wire_bytes(p), now,
                 net::Category::kQuery);
    if (carry != nullptr) {
      t = std::max(t, net.send(carry->site, chain.front().address,
                               net::wire::charged_bytes(carry->set),
                               carry->ready_at, net::Category::kData,
                               carry->set.byte_size()));
      carry_bytes = net::wire::charged_bytes(carry->set);
      carry_raw_bytes = carry->set.byte_size();
    }
    ship_span.finish(t);
  }

  SolutionSet acc;
  // The forwarding sender is always the last live participant (initially
  // the index node that launched the chain): if a provider is dead, its
  // predecessor detects the timeout and forwards past the corpse itself.
  net::NodeAddress sender = owner_addr;
  net::NodeAddress site = owner_addr;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    net::NodeAddress prov = chain[i].address;
    obs::SpanScope hop_span(trace_, obs::SpanKind::kChainHop,
                            "node " + std::to_string(prov), t, prov);
    std::optional<SolutionSet> local =
        run_at_provider(prov, p, t, initiator, rep);
    if (local.has_value()) {
      SolutionSet contribution =
          carry != nullptr ? sparql::join(carry->set, *local,
                                          policy_.vectorized)
                           : std::move(*local);
      acc = sparql::deduplicated(sparql::set_union(acc, contribution),
                                 policy_.vectorized);
      site = prov;
      sender = prov;
    }
    if (i + 1 < chain.size()) {
      net::NodeAddress next = chain[i + 1].address;
      std::size_t payload = subquery_wire_bytes(p) +
                            net::wire::charged_bytes(acc) + carry_bytes;
      std::size_t raw_payload =
          subquery_wire_bytes(p) + acc.byte_size() + carry_raw_bytes;
      t = net.send(sender, next, payload, t, net::Category::kData,
                   raw_payload);
    }
    hop_span.finish(t);
  }

  Located out;
  out.set = std::move(acc);
  out.site = site;
  out.ready_at = t;
  pattern_span.finish(out.ready_at);
  return out;
}

DistributedQueryProcessor::Located DistributedQueryProcessor::eval_pattern(
    const sparql::BgpPattern& p, net::NodeAddress initiator, net::SimTime now,
    ExecutionReport& rep, std::optional<net::NodeAddress> preferred_end,
    const Located* carry) {
  overlay::HybridOverlay::Located loc =
      locate(p.pattern, initiator, now, rep);
  if (!loc.ok) {
    Located out;
    out.site = initiator;
    out.ready_at = now;
    return out;
  }
  return exec_pattern(p, loc, initiator, rep, preferred_end, carry);
}

DistributedQueryProcessor::Located DistributedQueryProcessor::eval_bgp(
    const std::vector<sparql::BgpPattern>& bgp, net::NodeAddress initiator,
    net::SimTime now, ExecutionReport& rep,
    std::optional<net::NodeAddress> preferred_end) {
  if (bgp.empty()) {
    Located out;
    out.set.add(Binding{});  // the empty BGP has the empty solution
    out.site = initiator;
    out.ready_at = now;
    return out;
  }
  if (bgp.size() == 1) {
    return eval_pattern(bgp.front(), initiator, now, rep, preferred_end,
                        nullptr);
  }

  // Conjunction graph pattern (Sect. IV-D). Resolve every pattern through
  // the index first (in parallel, as the paper's initiator does).
  std::vector<overlay::HybridOverlay::Located> locs;
  locs.reserve(bgp.size());
  std::vector<optimizer::PatternStats> stats;
  stats.reserve(bgp.size());
  for (const sparql::BgpPattern& p : bgp) {
    overlay::HybridOverlay::Located loc =
        locate(p.pattern, initiator, now, rep);
    stats.push_back(optimizer::PatternStats{p.pattern, loc.providers});
    locs.push_back(std::move(loc));
  }

  // Join order: frequency-driven (AND is associative and commutative) or
  // textual when the optimization is switched off.
  std::vector<std::size_t> order;
  if (policy_.frequency_join_order) {
    order = optimizer::order_join_patterns(stats);
  } else {
    order.resize(bgp.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  }
  {
    std::string note = "join-order:";
    for (std::size_t i : order) note += " " + bgp[i].pattern.to_string();
    rep.plan_notes.push_back(std::move(note));
  }

  Located cur;
  for (std::size_t step = 0; step < order.size(); ++step) {
    std::size_t i = order[step];
    // Overlap-aware chain end: finish this pattern's chain at a provider
    // shared with the next pattern, so the next join starts co-located.
    std::optional<net::NodeAddress> end = preferred_end;
    if (policy_.overlap_aware_sites && step + 1 < order.size()) {
      std::vector<net::NodeAddress> shared = optimizer::provider_overlap(
          locs[i].providers, locs[order[step + 1]].providers);
      if (!shared.empty()) end = shared.front();
    }
    cur = exec_pattern(bgp[i], locs[i], initiator, rep, end,
                       step == 0 ? nullptr : &cur);
    if (cur.set.empty()) break;  // one empty operand empties the whole join
  }
  return cur;
}

std::pair<DistributedQueryProcessor::Located,
          DistributedQueryProcessor::Located>
DistributedQueryProcessor::colocate(Located a, Located b,
                                    net::NodeAddress initiator,
                                    ExecutionReport& rep) {
  std::vector<optimizer::SiteCandidate> candidates;
  if (policy_.join_site == JoinSitePolicy::kThirdSite) {
    for (net::NodeAddress addr : overlay_->live_storage_addresses()) {
      candidates.push_back(optimizer::SiteCandidate{
          addr, overlay_->storage_state(addr).capacity});
    }
  }
  // Charged (wire-encoded) operand sizes, mirroring the DAG executor.
  net::NodeAddress site = optimizer::choose_join_site(
      policy_.join_site,
      optimizer::LocatedOperand{a.site, net::wire::charged_bytes(a.set)},
      optimizer::LocatedOperand{b.site, net::wire::charged_bytes(b.set)},
      initiator, candidates);
  rep.plan_notes.push_back(
      std::string("join-site: ") +
      std::string(optimizer::join_site_policy_name(policy_.join_site)) +
      " -> node " + std::to_string(site));
  obs::SpanScope span(trace_, obs::SpanKind::kJoinSite,
                      "node " + std::to_string(site),
                      std::min(a.ready_at, b.ready_at), site);
  Located ca = ship(std::move(a), site, rep);
  Located cb = ship(std::move(b), site, rep);
  span.finish(std::max(ca.ready_at, cb.ready_at));
  return {std::move(ca), std::move(cb)};
}

DistributedQueryProcessor::Located DistributedQueryProcessor::eval(
    const Algebra& a, net::NodeAddress initiator, net::SimTime now,
    ExecutionReport& rep, std::optional<net::NodeAddress> preferred_end) {
  switch (a.kind) {
    case AlgebraKind::kBgp:
      return eval_bgp(a.bgp, initiator, now, rep, preferred_end);

    case AlgebraKind::kJoin: {
      Located l = eval(*a.left, initiator, now, rep, std::nullopt);
      Located r = eval(*a.right, initiator, now, rep, l.site);
      auto [cl, cr] = colocate(std::move(l), std::move(r), initiator, rep);
      Located out;
      out.set = sparql::join(cl.set, cr.set, policy_.vectorized);
      out.site = cl.site;
      out.ready_at = std::max(cl.ready_at, cr.ready_at);
      return out;
    }

    case AlgebraKind::kLeftJoin: {
      // OPTIONAL (Sect. IV-E): both sides evaluate in parallel; the
      // configured join-site policy (move-small by default) decides where
      // the left outer join runs.
      Located l = eval(*a.left, initiator, now, rep, std::nullopt);
      Located r = eval(*a.right, initiator, now, rep, std::nullopt);
      auto [cl, cr] = colocate(std::move(l), std::move(r), initiator, rep);
      Located out;
      out.set = sparql::left_join_conditioned(cl.set, cr.set, a.expr,
                                              policy_.vectorized);
      out.site = cl.site;
      out.ready_at = std::max(cl.ready_at, cr.ready_at);
      return out;
    }

    case AlgebraKind::kUnion: {
      // UNION (Sect. IV-F): both branches evaluate in parallel; the right
      // branch is asked to end its chain at the left branch's final site —
      // when the provider sets overlap, the union costs no extra shipping.
      Located l = eval(*a.left, initiator, now, rep, preferred_end);
      Located r = eval(*a.right, initiator, now, rep,
                       policy_.overlap_aware_sites
                           ? std::optional<net::NodeAddress>(l.site)
                           : std::nullopt);
      if (r.site != l.site) {
        // Fall back to move-small between the two branch sites.
        auto [cl, cr] = colocate(std::move(l), std::move(r), initiator, rep);
        l = std::move(cl);
        r = std::move(cr);
      }
      Located out;
      out.set = sparql::deduplicated(sparql::set_union(l.set, r.set),
                                     policy_.vectorized);
      out.site = l.site;
      out.ready_at = std::max(l.ready_at, r.ready_at);
      return out;
    }

    case AlgebraKind::kFilter: {
      // Group-level filters run where the operand already is, shrinking the
      // set before it ever crosses a link.
      Located l = eval(*a.left, initiator, now, rep, preferred_end);
      l.set = sparql::filter_set(l.set, *a.expr, policy_.vectorized);
      return l;
    }

    default: {
      // Solution modifiers are post-processing; if they appear inside the
      // tree (full translate() output), apply them at the operand's site.
      Located l = eval(*a.left, initiator, now, rep, preferred_end);
      switch (a.kind) {
        case AlgebraKind::kProject: {
          SolutionSet projected;
          for (const Binding& b : l.set.rows()) {
            projected.add(b.projected(a.vars));
          }
          l.set = std::move(projected);
          break;
        }
        case AlgebraKind::kDistinct:
        case AlgebraKind::kReduced:
          l.set = sparql::deduplicated(std::move(l.set), policy_.vectorized);
          break;
        case AlgebraKind::kOrderBy:
          sparql::order_solutions(l.set, a.order);
          break;
        case AlgebraKind::kSlice: {
          auto& rows = l.set.rows();
          std::size_t off = std::min<std::size_t>(rows.size(), a.offset);
          rows.erase(rows.begin(), rows.begin() + static_cast<std::ptrdiff_t>(off));
          if (a.limit.has_value() && rows.size() > *a.limit) {
            rows.resize(*a.limit);
          }
          break;
        }
        default:
          break;
      }
      return l;
    }
  }
}

sparql::QueryResult DistributedQueryProcessor::execute(
    std::string_view query_text, net::NodeAddress initiator,
    ExecutionReport* report) {
  return execute(sparql::parse_query(query_text), initiator, report);
}

sparql::QueryResult DistributedQueryProcessor::execute(
    const sparql::Query& q, net::NodeAddress initiator,
    ExecutionReport* report) {
  if (policy_.engine == ExecutionEngine::kDag) {
    // Single-query batch through the DAG engine. Root spans keep their
    // legacy labels (no query-id prefix) so traces stay comparable.
    BatchOptions opts;
    opts.label_query_ids = false;
    DagExecutor exec(*overlay_, policy_, trace_, opts);
    BatchResult r = exec.run({BatchQuery{q, initiator}});
    if (report != nullptr) *report = std::move(r.reports.front());
    return std::move(r.results.front());
  }

  net::Network& net = overlay_->network();
  const net::TrafficStats before = net.stats();
  ExecutionReport rep;

  // One kQuery span covers the whole Fig. 3 workflow; its scope ends before
  // the EXPLAIN rendering below so the rendered tree is complete.
  obs::SpanId query_span = obs::kNoSpan;
  Located result;
  sparql::QueryResult out;
  {
    obs::SpanScope qspan(trace_, obs::SpanKind::kQuery,
                         std::string(form_name(q.form)), 0.0, initiator);
    query_span = qspan.id();

    // Transform + global optimization (Fig. 3).
    AlgebraPtr pattern;
    {
      obs::SpanScope plan_span(trace_, obs::SpanKind::kPlan,
                               "transform + global optimization", 0.0,
                               initiator);
      pattern = sparql::translate_pattern(q.where);
      if (policy_.push_filters) pattern = optimizer::push_filters(pattern);
    }
    rep.plan_notes.push_back("algebra: " + pattern->to_string());

    // Distributed evaluation; the final set ships to the initiator.
    result = eval(*pattern, initiator, 0.0, rep, std::nullopt);
    {
      obs::SpanScope ship_span(trace_, obs::SpanKind::kShip,
                               "result to initiator", result.ready_at,
                               initiator);
      result = ship(std::move(result), initiator, rep, net::Category::kResult);
      ship_span.finish(result.ready_at);
    }

    if (q.form == sparql::QueryForm::kDescribe) {
      // Distributed DESCRIBE: resolve each target's surrounding triples with
      // two primitive pattern queries (t, ?, ?) and (?, ?, t).
      std::set<rdf::Term> targets;
      for (const rdf::PatternTerm& pt : q.describe_targets) {
        if (const rdf::Term* t = rdf::term_of(pt)) {
          targets.insert(*t);
        } else {
          const rdf::Variable& v = std::get<rdf::Variable>(pt);
          for (const Binding& b : result.set.rows()) {
            if (const rdf::Term* bound = b.get(v.name)) targets.insert(*bound);
          }
        }
      }
      std::set<rdf::Triple> triples;
      net::SimTime t0 = result.ready_at;
      for (const rdf::Term& t : targets) {
        for (const rdf::TriplePattern& tp :
             {rdf::TriplePattern{t, rdf::Variable{"__p"},
                                 rdf::Variable{"__o"}},
              rdf::TriplePattern{rdf::Variable{"__s"}, rdf::Variable{"__p"},
                                 t}}) {
          Located part =
              eval_pattern(sparql::BgpPattern{tp, nullptr}, initiator, t0,
                           rep, std::nullopt, nullptr);
          part = ship(std::move(part), initiator, rep, net::Category::kResult);
          result.ready_at = std::max(result.ready_at, part.ready_at);
          for (const Binding& b : part.set.rows()) {
            rdf::Triple tr{t, t, t};
            if (const rdf::Term* s = b.get("__s")) tr.s = *s;
            if (const rdf::Term* p = b.get("__p")) tr.p = *p;
            if (const rdf::Term* o = b.get("__o")) tr.o = *o;
            triples.insert(tr);
          }
        }
      }
      out.form = sparql::QueryForm::kDescribe;
      out.graph.assign(triples.begin(), triples.end());
    } else {
      // Post-processing at the initiator (Fig. 3): modifiers + projection.
      obs::SpanScope post_span(trace_, obs::SpanKind::kPostProcess,
                               "modifiers + projection", result.ready_at,
                               initiator);
      out = sparql::finalize_result(q, std::move(result.set), nullptr);
      post_span.finish(result.ready_at);
    }
    qspan.finish(result.ready_at);
  }

  rep.response_time = result.ready_at;
  rep.traffic = net.stats().delta_since(before);
  // Traced executions carry their EXPLAIN tree in the plan notes, so any
  // consumer of the report can see the per-phase cost without the trace.
  if (trace_ != nullptr && query_span != obs::kNoSpan) {
    for (std::string& line : obs::explain_lines(*trace_, query_span)) {
      rep.plan_notes.push_back(std::move(line));
    }
  }
  if (report != nullptr) *report = std::move(rep);
  return out;
}

BatchResult DistributedQueryProcessor::execute_batch(
    const std::vector<BatchQuery>& batch, const BatchOptions& opts) {
  std::string reason;
  if (parallel_batch_eligible(opts, batch.size(), &reason)) {
    return run_parallel_batch(*overlay_, policy_, batch, opts, trace_);
  }
  DagExecutor exec(*overlay_, policy_, trace_, opts);
  BatchResult out = exec.run(batch);
  // A batch that asked for workers but fell back to the serial scheduler
  // says why, so sweeps and tests can tell "parallel ran" from "parallel
  // was silently refused" without diffing timings.
  if (opts.workers > 1) {
    for (ExecutionReport& rep : out.reports) {
      rep.plan_notes.push_back("parallel: serial fallback (" + reason + ")");
    }
  }
  return out;
}

BatchResult DistributedQueryProcessor::execute_batch(
    const std::vector<std::string>& query_texts,
    const std::vector<net::NodeAddress>& initiators,
    const BatchOptions& opts) {
  assert(query_texts.size() == initiators.size() &&
         "execute_batch: one initiator per query");
  std::vector<BatchQuery> batch;
  batch.reserve(query_texts.size());
  for (std::size_t i = 0; i < query_texts.size(); ++i) {
    batch.push_back(
        BatchQuery{sparql::parse_query(query_texts[i]), initiators[i]});
  }
  return execute_batch(batch, opts);
}

}  // namespace ahsw::dqp
