// Physical operator plan (the reified Fig. 3 pipeline).
//
// The planner compiles the optimized SPARQL algebra into an explicit DAG of
// physical operators instead of evaluating it with a recursive walk. Each
// node carries the site/strategy decisions that the legacy path buried in
// control flow (PrimitiveStrategy, JoinSitePolicy, overlap-aware chain
// ends), so a plan can be rendered, diffed and executed by the event-driven
// scheduler in dqp/executor.
//
// Two granularities exist on purpose:
//   - *static* operators, compiled here, mirror the algebra one-to-one
//     (IndexLookup, ProviderScan, Join, LeftJoin, Union, Minus, Filter,
//     Modifier, Ship, PostProcess);
//   - *dynamic* tasks (ChainHop, per-provider scatter legs, DESCRIBE
//     expansion) are spawned by the executor at fire time, because chain
//     membership and join order depend on runtime index lookups. The kinds
//     still live in this enum so traces and renderings share one vocabulary.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "optimizer/planner.hpp"
#include "overlay/location_cache.hpp"
#include "sparql/algebra.hpp"
#include "sparql/ast.hpp"

namespace ahsw::dqp {

/// Which evaluation path `DistributedQueryProcessor::execute` takes. The
/// DAG executor is the default; the legacy recursive walk remains for one
/// release as an A/B reference (the equivalence tests pin them to byte-equal
/// results, traffic and response times).
enum class ExecutionEngine : std::uint8_t {
  kDag,     // physical plan + deterministic event scheduler
  kLegacy,  // recursive eval() walk (to be removed next PR)
};

/// Recovery knobs for sub-query dispatch under churn (DAG engine only).
/// With the defaults every knob is off, so existing executions — including
/// the legacy/DAG A/B equivalence pins — are byte-identical to before.
///
/// A dead provider costs one failure-detection timeout per contact. With
/// retries enabled, the dispatcher re-contacts the *next* ranked provider
/// of the level-2 frequency row (ascending frequency, the chain order)
/// after a deterministic backoff; when the whole provider set is exhausted
/// and `relookup` is set, it falls back to the paper's lazy repair: one
/// fresh index lookup, then one more pass over whatever the repaired row
/// returns. Every attempt is charged through the normal traffic categories
/// and wrapped in a kRetry span.
struct RetryPolicy {
  int max_retries = 0;            // extra contacts per pattern beyond the first pass
  double backoff_base_ms = 8.0;   // wait before the first retry
  double backoff_growth = 2.0;    // multiplier per further attempt
  bool relookup = false;          // lazy repair + one re-lookup on exhaustion

  [[nodiscard]] bool enabled() const noexcept { return max_retries > 0; }
  /// Deterministic backoff before retry number `attempt` (1-based).
  [[nodiscard]] double backoff_ms(int attempt) const noexcept {
    double wait = backoff_base_ms;
    for (int i = 1; i < attempt; ++i) wait *= backoff_growth;
    return wait;
  }
};

/// Plan-selection knobs (the paper's optimization alternatives).
struct ExecutionPolicy {
  optimizer::PrimitiveStrategy primitive =
      optimizer::PrimitiveStrategy::kFrequencyChain;
  optimizer::JoinSitePolicy join_site = optimizer::JoinSitePolicy::kMoveSmall;
  bool push_filters = true;          // Sect. IV-G rewrite
  bool frequency_join_order = true;  // IV-D: order AND patterns by frequency
  bool overlap_aware_sites = true;   // IV-D/IV-F: end chains at shared nodes

  /// Evaluate join/filter/distinct operators over dictionary-id columns
  /// (sparql/columnar.hpp) instead of row-at-a-time term comparisons. Pure
  /// execution detail: rows, plan notes and traffic are byte-identical
  /// either way (pinned by tests/sparql/vectorized_ab_test.cpp); false
  /// keeps the legacy path for A/B comparison.
  bool vectorized = true;

  /// Adaptive per-pattern strategy selection (the paper's Sect. V future
  /// work: plans under a mixture of traffic and response-time objectives).
  /// When set, `primitive` is ignored for index-served patterns and the
  /// strategy with the lowest weighted estimated cost is chosen from the
  /// location-table frequencies.
  bool adaptive = false;
  optimizer::ObjectiveWeights objectives;

  /// Sub-query retry/failover under churn (DAG engine only; defaults off).
  RetryPolicy retry;

  /// Initiator-side location-row caching (DAG engine only; disabled by
  /// default, so existing executions stay byte-identical). A cache hit
  /// serves the provider row locally — zero `index` traffic, zero ring
  /// hops; a dead-provider give-up invalidates the row, composing with
  /// `retry`. See docs/caching.md.
  overlay::CacheConfig cache;

  ExecutionEngine engine = ExecutionEngine::kDag;
};

using OpId = std::uint32_t;
inline constexpr OpId kNoOp = 0xffffffffu;

enum class PhysOpKind : std::uint8_t {
  kConst,        // empty BGP: yields the single empty solution at t0
  kIndexLookup,  // resolve one triple pattern through the two-level index
  kProviderScan, // evaluate one pattern at its providers (strategy-driven)
  kChainHop,     // dynamic: one provider visit of a chain
  kShip,         // move a solution set between sites
  kJoin,
  kLeftJoin,
  kUnion,
  kMinus,        // algebra never emits it today; executor supports it
  kFilter,
  kModifier,     // in-tree Project/Distinct/Reduced/OrderBy/Slice
  kPostProcess,  // final modifiers / DESCRIBE expansion at the initiator
};

[[nodiscard]] std::string_view phys_op_kind_name(PhysOpKind k) noexcept;

/// One node of the physical plan DAG.
///
/// `inputs` are data dependencies in operand order (left before right).
/// `preferred_end_from` is a *control* dependency: the scan may not fire
/// until that operator finished, because its output site is this chain's
/// preferred end (overlap-aware site selection). Control deps affect fire
/// order, never simulated start times — the legacy path evaluates every
/// subtree at the same logical `now`, and the DAG reproduces that exactly.
struct PhysicalOp {
  OpId id = kNoOp;
  PhysOpKind kind = PhysOpKind::kConst;
  std::vector<OpId> inputs;
  OpId preferred_end_from = kNoOp;

  /// Sequencing-only dependencies. The legacy walk evaluates binary
  /// operands strictly left-then-right, so lazy index repairs triggered by
  /// the left subtree are visible to the right subtree's lookups. The
  /// compiler pins that order by making every *source* op (lookup/const) of
  /// a right subtree wait for the left subtree's root. Like
  /// `preferred_end_from`, control deps gate firing, not simulated time.
  std::vector<OpId> control;

  // kIndexLookup and single-pattern kProviderScan:
  sparql::BgpPattern pattern;
  OpId lookup = kNoOp;  // the standalone scan's own lookup op

  // Multi-pattern BGP: the conjunction becomes one scan per join *slot*.
  // The pattern each slot runs is picked at fire time from the runtime join
  // order (frequency-driven); slot 0 owns the lookups and the group state.
  int slot = -1;                    // -1 = standalone single-pattern scan
  OpId group = kNoOp;               // slot-0 scan of this BGP
  int group_size = 0;               // number of patterns in the BGP
  std::vector<OpId> group_lookups;  // slot 0 only: all lookups of the BGP

  // kFilter condition / kLeftJoin condition (null means `true`):
  sparql::ExprPtr expr;

  // kModifier payload (mirrors the algebra node):
  sparql::AlgebraKind modifier = sparql::AlgebraKind::kProject;
  std::vector<std::string> vars;
  std::vector<sparql::OrderCondition> order;
  std::uint64_t offset = 0;
  std::optional<std::uint64_t> limit;
};

/// A compiled query plan: `ops` in topological order (inputs precede
/// users), ending in result ship + post-processing at the initiator.
struct PhysicalPlan {
  ExecutionPolicy policy;
  sparql::QueryForm form = sparql::QueryForm::kSelect;
  std::vector<PhysicalOp> ops;
  OpId root = kNoOp;  // operator producing the final pattern solutions
  OpId ship = kNoOp;  // result ship to the initiator
  OpId post = kNoOp;  // post-processing (the plan's sink)

  /// EXPLAIN rendering: one line per operator, children indented beneath
  /// their consumer, shared nodes printed once and referenced as `^#id`.
  [[nodiscard]] std::vector<std::string> to_lines() const;
  [[nodiscard]] std::string to_string() const;
};

/// Compile the optimized algebra into a physical plan. `a` must be the
/// *pattern* part (translate_pattern + filter pushing), not the full
/// modifier stack — post-processing is always the plan's sink op.
[[nodiscard]] PhysicalPlan compile_physical_plan(const sparql::Algebra& a,
                                                 const ExecutionPolicy& policy,
                                                 sparql::QueryForm form);

/// Wire size of a shipped sub-query: the pattern, any pushed filter, and
/// plan metadata (chain list, return address). Shared by both engines so
/// their traffic charges stay identical.
[[nodiscard]] std::size_t subquery_wire_bytes(const sparql::BgpPattern& p);

}  // namespace ahsw::dqp
