#include "dqp/physical_plan.hpp"

#include <cassert>

namespace ahsw::dqp {

using sparql::Algebra;
using sparql::AlgebraKind;

std::string_view phys_op_kind_name(PhysOpKind k) noexcept {
  switch (k) {
    case PhysOpKind::kConst: return "Const";
    case PhysOpKind::kIndexLookup: return "IndexLookup";
    case PhysOpKind::kProviderScan: return "ProviderScan";
    case PhysOpKind::kChainHop: return "ChainHop";
    case PhysOpKind::kShip: return "Ship";
    case PhysOpKind::kJoin: return "Join";
    case PhysOpKind::kLeftJoin: return "LeftJoin";
    case PhysOpKind::kUnion: return "Union";
    case PhysOpKind::kMinus: return "Minus";
    case PhysOpKind::kFilter: return "Filter";
    case PhysOpKind::kModifier: return "Modifier";
    case PhysOpKind::kPostProcess: return "PostProcess";
  }
  assert(false && "phys_op_kind_name: unnamed PhysOpKind enumerator");
  return "?";
}

std::size_t subquery_wire_bytes(const sparql::BgpPattern& p) {
  std::size_t n = p.pattern.byte_size() + 32;
  if (p.pushed_filter != nullptr) n += p.pushed_filter->byte_size();
  return n;
}

namespace {

/// Recursive algebra -> DAG compiler. Operators are appended in
/// topological order (every input precedes its consumer).
struct Compiler {
  const ExecutionPolicy& policy;
  PhysicalPlan& plan;

  OpId add(PhysicalOp op) {
    op.id = static_cast<OpId>(plan.ops.size());
    plan.ops.push_back(std::move(op));
    return plan.ops.back().id;
  }

  /// Attach the current barrier (the op that must fire before this subtree
  /// may start touching shared index state) to a source op.
  void gate(PhysicalOp& op, OpId barrier) {
    if (barrier != kNoOp) op.control.push_back(barrier);
  }

  OpId compile_bgp(const std::vector<sparql::BgpPattern>& bgp, OpId pend,
                   OpId barrier) {
    if (bgp.empty()) {
      PhysicalOp c;
      c.kind = PhysOpKind::kConst;
      gate(c, barrier);
      return add(std::move(c));
    }
    if (bgp.size() == 1) {
      PhysicalOp l;
      l.kind = PhysOpKind::kIndexLookup;
      l.pattern = bgp.front();
      gate(l, barrier);
      OpId lid = add(std::move(l));
      PhysicalOp s;
      s.kind = PhysOpKind::kProviderScan;
      s.pattern = bgp.front();
      s.lookup = lid;
      s.inputs = {lid};
      s.preferred_end_from = pend;
      s.group_size = 1;
      return add(std::move(s));
    }

    // Conjunction: all index lookups first (the initiator resolves every
    // pattern in parallel), then one scan per join slot. Which pattern a
    // slot runs is a runtime decision (frequency-driven join order), so the
    // slots carry positions, not patterns; slot 0 owns the group state.
    std::vector<OpId> lookups;
    lookups.reserve(bgp.size());
    for (const sparql::BgpPattern& p : bgp) {
      PhysicalOp l;
      l.kind = PhysOpKind::kIndexLookup;
      l.pattern = p;
      gate(l, barrier);
      lookups.push_back(add(std::move(l)));
    }
    OpId prev = kNoOp;
    OpId slot0 = kNoOp;
    for (int k = 0; k < static_cast<int>(bgp.size()); ++k) {
      PhysicalOp s;
      s.kind = PhysOpKind::kProviderScan;
      s.slot = k;
      s.group_size = static_cast<int>(bgp.size());
      s.preferred_end_from = pend;
      if (k == 0) {
        s.inputs = lookups;
        s.group_lookups = lookups;
        slot0 = static_cast<OpId>(plan.ops.size());
        s.group = slot0;
      } else {
        s.inputs = {prev};
        s.group = slot0;
      }
      prev = add(std::move(s));
    }
    return prev;
  }

  OpId compile(const Algebra& a, OpId pend, OpId barrier) {
    switch (a.kind) {
      case AlgebraKind::kBgp:
        return compile_bgp(a.bgp, pend, barrier);

      case AlgebraKind::kJoin: {
        OpId l = compile(*a.left, kNoOp, barrier);
        // The right subtree's chains prefer to end where the left operand
        // landed (its runtime site), so the join starts co-located; the
        // left root also barriers the right subtree (legacy eval order).
        OpId r = compile(*a.right, l, l);
        PhysicalOp op;
        op.kind = PhysOpKind::kJoin;
        op.inputs = {l, r};
        return add(std::move(op));
      }

      case AlgebraKind::kLeftJoin: {
        OpId l = compile(*a.left, kNoOp, barrier);
        OpId r = compile(*a.right, kNoOp, l);
        PhysicalOp op;
        op.kind = PhysOpKind::kLeftJoin;
        op.inputs = {l, r};
        op.expr = a.expr;
        return add(std::move(op));
      }

      case AlgebraKind::kUnion: {
        OpId l = compile(*a.left, pend, barrier);
        OpId r = compile(*a.right,
                         policy.overlap_aware_sites ? l : kNoOp, l);
        PhysicalOp op;
        op.kind = PhysOpKind::kUnion;
        op.inputs = {l, r};
        return add(std::move(op));
      }

      case AlgebraKind::kFilter: {
        OpId c = compile(*a.left, pend, barrier);
        PhysicalOp op;
        op.kind = PhysOpKind::kFilter;
        op.inputs = {c};
        op.expr = a.expr;
        return add(std::move(op));
      }

      default: {
        // In-tree solution modifiers (full translate() output).
        OpId c = compile(*a.left, pend, barrier);
        PhysicalOp op;
        op.kind = PhysOpKind::kModifier;
        op.inputs = {c};
        op.modifier = a.kind;
        op.vars = a.vars;
        op.order = a.order;
        op.offset = a.offset;
        op.limit = a.limit;
        return add(std::move(op));
      }
    }
  }
};

[[nodiscard]] std::string describe_op(const PhysicalPlan& plan,
                                      const PhysicalOp& op) {
  const ExecutionPolicy& pol = plan.policy;
  const std::string colocate =
      std::string(optimizer::join_site_policy_name(pol.join_site));
  switch (op.kind) {
    case PhysOpKind::kConst:
      return "Const [empty BGP -> one empty solution]";
    case PhysOpKind::kIndexLookup:
      return "IndexLookup " + op.pattern.to_string();
    case PhysOpKind::kProviderScan: {
      std::string strat =
          pol.adaptive
              ? "adaptive"
              : std::string(optimizer::primitive_strategy_name(pol.primitive));
      std::string end;
      if (op.preferred_end_from != kNoOp) {
        end = ", end@site(#" + std::to_string(op.preferred_end_from) + ")";
      }
      if (op.slot < 0) {
        return "ProviderScan " + op.pattern.to_string() + " [strategy=" +
               strat + end + "]";
      }
      std::string order =
          pol.frequency_join_order ? "frequency" : "textual";
      return "ProviderScan [slot " + std::to_string(op.slot) + "/" +
             std::to_string(op.group_size) + ", order=" + order +
             ", strategy=" + strat + end + "]";
    }
    case PhysOpKind::kChainHop:
      return "ChainHop";
    case PhysOpKind::kShip:
      return "Ship [result -> initiator]";
    case PhysOpKind::kJoin:
      return "Join [site=" + colocate + "]";
    case PhysOpKind::kLeftJoin:
      return "LeftJoin [site=" + colocate + ", cond=" +
             (op.expr != nullptr ? op.expr->to_string() : "true") + "]";
    case PhysOpKind::kUnion:
      return std::string("Union [colocate=") + colocate +
             (pol.overlap_aware_sites ? ", overlap-aware ends]" : "]");
    case PhysOpKind::kMinus:
      return "Minus [site=" + colocate + "]";
    case PhysOpKind::kFilter:
      return "Filter " +
             (op.expr != nullptr ? op.expr->to_string() : "true");
    case PhysOpKind::kModifier:
      switch (op.modifier) {
        case AlgebraKind::kProject: {
          std::string vars;
          for (const std::string& v : op.vars) {
            vars += (vars.empty() ? "?" : " ?") + v;
          }
          return "Project [" + vars + "]";
        }
        case AlgebraKind::kDistinct:
          return "Distinct";
        case AlgebraKind::kReduced:
          return "Reduced";
        case AlgebraKind::kOrderBy: {
          std::string keys;
          for (const sparql::OrderCondition& c : op.order) {
            if (!keys.empty()) keys += ", ";
            keys += c.expr->to_string();
            keys += c.ascending ? " asc" : " desc";
          }
          return "OrderBy [" + keys + "]";
        }
        case AlgebraKind::kSlice:
          return "Slice [offset=" + std::to_string(op.offset) + ", limit=" +
                 (op.limit.has_value() ? std::to_string(*op.limit) : "-") +
                 "]";
        default:
          return "Modifier";
      }
    case PhysOpKind::kPostProcess:
      return plan.form == sparql::QueryForm::kDescribe
                 ? "PostProcess [DESCRIBE expansion @ initiator]"
                 : "PostProcess [modifiers + projection @ initiator]";
  }
  return "?";
}

}  // namespace

std::vector<std::string> PhysicalPlan::to_lines() const {
  std::vector<std::string> out;
  if (post == kNoOp) return out;
  std::vector<char> printed(ops.size(), 0);
  auto rec = [&](auto&& self, OpId id, int depth) -> void {
    const PhysicalOp& op = ops[id];
    std::string line(static_cast<std::size_t>(depth) * 2, ' ');
    if (printed[id] != 0) {
      // Shared input (a DAG, not a tree): reference the earlier rendering.
      line += "^#" + std::to_string(id);
      out.push_back(std::move(line));
      return;
    }
    printed[id] = 1;
    line += "#" + std::to_string(id) + " " + describe_op(*this, op);
    out.push_back(std::move(line));
    for (OpId in : op.inputs) self(self, in, depth + 1);
  };
  rec(rec, post, 0);
  return out;
}

std::string PhysicalPlan::to_string() const {
  std::string out;
  for (const std::string& line : to_lines()) {
    out += line;
    out += '\n';
  }
  return out;
}

PhysicalPlan compile_physical_plan(const Algebra& a,
                                   const ExecutionPolicy& policy,
                                   sparql::QueryForm form) {
  PhysicalPlan plan;
  plan.policy = policy;
  plan.form = form;
  Compiler c{policy, plan};
  plan.root = c.compile(a, kNoOp, kNoOp);

  PhysicalOp ship;
  ship.kind = PhysOpKind::kShip;
  ship.inputs = {plan.root};
  plan.ship = c.add(std::move(ship));

  PhysicalOp post;
  post.kind = PhysOpKind::kPostProcess;
  post.inputs = {plan.ship};
  plan.post = c.add(std::move(post));
  return plan;
}

}  // namespace ahsw::dqp
