// Deterministic parallel batch driver (docs/execution_engine.md, "Parallel
// driver").
//
// Splits a batch into per-worker shards by query id (qid % workers), runs
// each shard through its own DagExecutor against a *cloned* overlay + network
// on a worker thread, then merges on the master: per-query results/reports
// slot back by id, and every shared-overlay mutation the shards performed
// (cache lookups/inserts/invalidations, lease subscriptions, lazy
// dead-provider repairs) is replayed onto the master overlay in the serial
// driver's global (time, query, task) order — interleaved with the master's
// injected fault events under net::kInjectionQueryId. Parallelism changes
// wall-clock time only, never simulated time: every SimTime in the merged
// result is computed by the same formulas the serial driver uses.
//
// Byte-identity contract: with workers = 1 the processor runs today's serial
// scheduler (this file is never entered). With workers > 1 the merged output
// is byte-identical to serial whenever the partitioned queries are
// independent — no cross-shard coupling through a shared initiator cache or
// through lazy repairs racing lookups of the same row key. The A/B tests in
// tests/dqp/parallel_batch_test.cpp pin this for workers in {2, 4, 8};
// docs/execution_engine.md states the conditions.
#pragma once

#include "dqp/processor.hpp"

namespace ahsw::dqp {

/// Whether `execute_batch` may take the parallel path: workers > 1, at
/// least two queries to partition, no attached trace (span attribution is
/// master-thread state), no service model (per-node contention couples
/// shards), and injections only when an `injection_factory` can rebuild
/// them against each worker's clone.
[[nodiscard]] bool parallel_batch_eligible(const BatchOptions& opts,
                                           const obs::QueryTrace* trace,
                                           std::size_t batch_size) noexcept;

/// Run `batch` with `opts.workers` worker threads. Precondition:
/// `parallel_batch_eligible(...)`. The master overlay/network end the call
/// in the same state and with the same traffic totals the serial driver
/// would have produced (see the byte-identity contract above).
[[nodiscard]] BatchResult run_parallel_batch(
    overlay::HybridOverlay& overlay, const ExecutionPolicy& policy,
    const std::vector<BatchQuery>& batch, const BatchOptions& opts);

}  // namespace ahsw::dqp
