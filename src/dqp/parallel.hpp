// Deterministic parallel batch driver (docs/execution_engine.md, "Parallel
// driver").
//
// Splits a batch into per-worker shards by query id (qid % workers), runs
// each shard through its own DagExecutor against a *cloned* overlay + network
// on a worker thread, then merges on the master: per-query results/reports
// slot back by id, and every shared-overlay mutation the shards performed
// (cache lookups/inserts/invalidations, lease subscriptions, lazy
// dead-provider repairs) is replayed onto the master overlay in the serial
// driver's global (time, query, task) order — interleaved with the master's
// injected fault events under net::kInjectionQueryId. Parallelism changes
// wall-clock time only, never simulated time: every SimTime in the merged
// result is computed by the same formulas the serial driver uses.
//
// Traced batches: each worker records its shard's spans into a private
// obs::QueryTrace bound to the shard's cloned network; the master grafts
// the per-query subtrees onto the caller's trace in query-id order
// (QueryTrace::adopt_subtree), so the merged forest, every EXPLAIN tree and
// every per-span traffic counter are byte-identical to the serial driver's.
// Master-bound injections replay with the caller's tracers attached, so
// their charges land unattributed exactly as in a serial run.
//
// Byte-identity contract: with workers = 1 the processor runs today's serial
// scheduler (this file is never entered). With workers > 1 the merged output
// is byte-identical to serial whenever the partitioned queries are
// independent — no cross-shard coupling through a shared initiator cache or
// through lazy repairs racing lookups of the same row key. The A/B tests in
// tests/dqp/parallel_batch_test.cpp pin this for workers in {2, 4, 8},
// traced and untraced; docs/execution_engine.md states the conditions.
#pragma once

#include <string>

#include "dqp/processor.hpp"

// Clang thread-safety analysis attributes (-Wthread-safety) for the
// master/worker handoff in src/dqp/parallel.cpp. Empty under other
// compilers, so the annotated code stays portable; the strict (Werror)
// build turns the analysis on for clang (see the ahsw_warnings target).
#if defined(__clang__)
#define AHSW_CAPABILITY(x) __attribute__((capability(x)))
#define AHSW_SCOPED_CAPABILITY __attribute__((scoped_lockable))
#define AHSW_GUARDED_BY(x) __attribute__((guarded_by(x)))
#define AHSW_ACQUIRE(...) __attribute__((acquire_capability(__VA_ARGS__)))
#define AHSW_RELEASE(...) __attribute__((release_capability(__VA_ARGS__)))
#else
#define AHSW_CAPABILITY(x)
#define AHSW_SCOPED_CAPABILITY
#define AHSW_GUARDED_BY(x)
#define AHSW_ACQUIRE(...)
#define AHSW_RELEASE(...)
#endif

namespace ahsw::dqp {

/// Whether `execute_batch` may take the parallel path: workers > 1, at
/// least two queries to partition, no service model (per-node contention
/// couples shards), and injections only when an `injection_factory` can
/// rebuild them against each worker's clone. Traced batches are eligible:
/// workers record into private traces the master merges. When ineligible
/// and `reason` is non-null, it receives the first rejected condition
/// (the processor surfaces it in the batch's plan notes).
[[nodiscard]] bool parallel_batch_eligible(const BatchOptions& opts,
                                           std::size_t batch_size,
                                           std::string* reason =
                                               nullptr) noexcept;

/// Run `batch` with `opts.workers` worker threads. Precondition:
/// `parallel_batch_eligible(...)`. The master overlay/network end the call
/// in the same state and with the same traffic totals the serial driver
/// would have produced; with a non-null `trace`, the merged span forest is
/// the serial one too (see the byte-identity contract above).
[[nodiscard]] BatchResult run_parallel_batch(
    overlay::HybridOverlay& overlay, const ExecutionPolicy& policy,
    const std::vector<BatchQuery>& batch, const BatchOptions& opts,
    obs::QueryTrace* trace = nullptr);

}  // namespace ahsw::dqp
