#include "dqp/executor.hpp"

#include <algorithm>
#include <cassert>
#include <set>

#include "net/wire.hpp"
#include "obs/explain.hpp"
#include "sparql/ast.hpp"

namespace ahsw::dqp {

using optimizer::JoinSitePolicy;
using optimizer::PrimitiveStrategy;
using sparql::Binding;
using sparql::SolutionSet;

namespace {

[[nodiscard]] std::string_view form_name(sparql::QueryForm f) {
  switch (f) {
    case sparql::QueryForm::kSelect: return "SELECT";
    case sparql::QueryForm::kConstruct: return "CONSTRUCT";
    case sparql::QueryForm::kAsk: return "ASK";
    case sparql::QueryForm::kDescribe: return "DESCRIBE";
  }
  return "?";
}

/// Move `end` to the back of `chain` if present (chains may be asked to
/// finish at an overlap node; relative order of the rest is preserved).
void rotate_end_to_back(std::vector<overlay::Provider>& chain,
                        net::NodeAddress end) {
  auto it = std::find_if(
      chain.begin(), chain.end(),
      [&](const overlay::Provider& p) { return p.address == end; });
  if (it == chain.end()) return;
  overlay::Provider saved = *it;
  chain.erase(it);
  chain.push_back(saved);
}

}  // namespace

// ---------------------------------------------------------------------------
// Legacy-identical primitives.

overlay::HybridOverlay::Located DagExecutor::locate(
    const rdf::TriplePattern& p, net::NodeAddress initiator, net::SimTime now,
    ExecutionReport& rep) {
  overlay::HybridOverlay::Located loc = overlay_->locate(initiator, p, now);
  ++rep.index_lookups;
  rep.ring_hops += loc.hops;
  if (!loc.ok) rep.complete = false;
  return loc;
}

DagExecutor::Located DagExecutor::ship(Located from, net::NodeAddress target,
                                       net::Category category) {
  if (from.site == target) return from;
  from.ready_at =
      net().send(from.site, target, net::wire::charged_bytes(from.set),
                 from.ready_at, category, from.set.byte_size());
  from.site = target;
  return from;
}

std::optional<SolutionSet> DagExecutor::run_at_provider(
    net::NodeAddress provider, const sparql::BgpPattern& p, net::SimTime& now,
    net::NodeAddress /*initiator*/, ExecutionReport& rep) {
  if (net().is_failed(provider)) {
    now = net().timeout(now, provider, net::Category::kQuery);
    return std::nullopt;
  }
  ++rep.providers_contacted;
  sparql::LocalEngine engine(overlay_->store_of(provider), policy_.vectorized);
  return engine.match_pattern(p);
}

void DagExecutor::give_up_on_provider(net::NodeAddress provider,
                                      const sparql::BgpPattern& p,
                                      net::SimTime now,
                                      net::NodeAddress initiator,
                                      ExecutionReport& rep) {
  ++rep.dead_providers_skipped;
  if (policy_.cache.enabled) {
    // Invalidate-on-timeout: the cached row listed a provider that just
    // exhausted its retries, so the next lookup of this key must re-fetch
    // instead of paying the dead-provider timeout again.
    if (std::optional<chord::Key> key = overlay_->row_key(p.pattern)) {
      overlay::LocationCache& cache = overlay_->cache_for(initiator);
      const overlay::CacheStats before = cache.stats();
      if (state_log_ != nullptr) {
        StateAction a;
        a.kind = StateAction::Kind::kCacheInvalidate;
        a.when = now;
        a.initiator = initiator;
        a.key = *key;
        record(std::move(a));
      }
      if (cache.invalidate(*key)) {
        obs::SpanScope span(
            trace_, obs::SpanKind::kCache,
            "invalidate key " + std::to_string(overlay_->ring().truncate(*key)),
            now, initiator);
        span.finish(now);
      }
      rep.cache.accumulate(cache.stats().delta_since(before));
    }
  }
  if (state_log_ != nullptr) {
    StateAction a;
    a.kind = StateAction::Kind::kReportDead;
    a.when = now;
    a.initiator = initiator;
    a.dead = provider;
    a.pattern = p.pattern;
    record(std::move(a));
  }
  overlay_->report_dead_provider(initiator, p.pattern, provider, now);
}

std::pair<DagExecutor::Located, DagExecutor::Located> DagExecutor::colocate(
    Located a, Located b, net::NodeAddress initiator, ExecutionReport& rep) {
  std::vector<optimizer::SiteCandidate> candidates;
  if (policy_.join_site == JoinSitePolicy::kThirdSite) {
    for (net::NodeAddress addr : overlay_->live_storage_addresses()) {
      candidates.push_back(optimizer::SiteCandidate{
          addr, overlay_->storage_state(addr).capacity});
    }
  }
  // Operand sizes are the *charged* (wire-encoded) sizes: move-small
  // decisions follow what shipping actually costs under compression.
  net::NodeAddress site = optimizer::choose_join_site(
      policy_.join_site,
      optimizer::LocatedOperand{a.site, net::wire::charged_bytes(a.set)},
      optimizer::LocatedOperand{b.site, net::wire::charged_bytes(b.set)},
      initiator, candidates);
  rep.plan_notes.push_back(
      std::string("join-site: ") +
      std::string(optimizer::join_site_policy_name(policy_.join_site)) +
      " -> node " + std::to_string(site));
  obs::SpanScope span(trace_, obs::SpanKind::kJoinSite,
                      "node " + std::to_string(site),
                      std::min(a.ready_at, b.ready_at), site);
  Located ca = ship(std::move(a), site, net::Category::kData);
  Located cb = ship(std::move(b), site, net::Category::kData);
  span.finish(std::max(ca.ready_at, cb.ready_at));
  return {std::move(ca), std::move(cb)};
}

obs::SpanId DagExecutor::open_span(obs::SpanKind kind, std::string label,
                                   net::SimTime at, net::NodeAddress site) {
  if (trace_ == nullptr) return obs::kNoSpan;
  // ahsw-lint: allow(O1) interleaved firings cannot hold one RAII scope
  // per task; fire() balances every open with a close_span.
  return trace_->open(kind, std::move(label), at, site);
}

void DagExecutor::close_span(obs::SpanId span, net::SimTime end) {
  if (trace_ == nullptr || span == obs::kNoSpan) return;
  // ahsw-lint: allow(O1) the matching close for open_span / reopen_span.
  trace_->close(span, end);
}

void DagExecutor::reopen_span(obs::SpanId span) {
  if (trace_ == nullptr || span == obs::kNoSpan) return;
  // ahsw-lint: allow(O1) a task span is re-entered once per interleaved
  // firing; close_span balances it before the next event fires.
  trace_->reopen(span);
}

net::SimTime DagExecutor::claim(net::NodeAddress node, std::uint32_t qid,
                                net::SimTime at) {
  if (opts_.service.service_ms <= 0) return at;
  auto& [busy_until, last] = busy_[node];
  // Only *cross-query* overlap queues: a query never waits on its own work
  // (the legacy engine models one query's parallelism as free).
  if (last != 0 && last != qid + 1 && busy_until > at) at = busy_until;
  busy_until = std::max(busy_until, at + opts_.service.service_ms);
  last = qid + 1;
  return at;
}

// ---------------------------------------------------------------------------
// Setup.

DagExecutor::TaskId DagExecutor::add_task(QueryRun& run, Task t) {
  TaskId id = static_cast<TaskId>(run.tasks.size());
  t.pending = 0;
  for (TaskId d : t.deps) {
    if (!run.tasks[d].done) ++t.pending;
  }
  run.tasks.push_back(std::move(t));
  for (TaskId d : run.tasks[id].deps) run.tasks[d].dependents.push_back(id);
  if (run.tasks[id].pending == 0) schedule(run, id);
  return id;
}

void DagExecutor::schedule(QueryRun& run, TaskId id) {
  Task& t = run.tasks[id];
  net::SimTime at = t.base;
  for (TaskId d : t.deps) at = std::max(at, run.tasks[d].finish);
  queue_.push(net::ReadyEvent{at, run.qid, id});
}

void DagExecutor::complete(QueryRun& run, TaskId id, net::SimTime finish) {
  Task& t = run.tasks[id];
  assert(!t.done && "task completed twice");
  t.done = true;
  t.finish = finish;
  for (TaskId d : t.dependents) {
    Task& dep = run.tasks[d];
    assert(dep.pending > 0);
    if (--dep.pending == 0) schedule(run, d);
  }
}

void DagExecutor::setup_query(QueryRun& run) {
  const sparql::Query& q = run.query;

  std::string label = std::string(form_name(q.form));
  if (opts_.label_query_ids) {
    label = "q" + std::to_string(run.qid) + " " + label;
  }
  run.root_span = open_span(obs::SpanKind::kQuery, std::move(label), 0.0,
                            run.initiator);
  obs::SpanId plan_span = open_span(
      obs::SpanKind::kPlan, "transform + global optimization", 0.0,
      run.initiator);
  sparql::AlgebraPtr pattern = sparql::translate_pattern(q.where);
  if (policy_.push_filters) pattern = optimizer::push_filters(pattern);
  close_span(plan_span, 0.0);
  close_span(run.root_span, 0.0);
  run.rep.plan_notes.push_back("algebra: " + pattern->to_string());
  run.plan = compile_physical_plan(*pattern, policy_, q.form);

  // One static task per plan op, in op order (so task id == op id). Control
  // and preferred-end edges gate firing alongside the data inputs.
  for (const PhysicalOp& op : run.plan.ops) {
    Task t;
    t.op = op.id;
    t.parent_span = run.root_span;
    t.deps = op.inputs;
    for (OpId c : op.control) {
      if (std::find(t.deps.begin(), t.deps.end(), c) == t.deps.end()) {
        t.deps.push_back(c);
      }
    }
    if (op.preferred_end_from != kNoOp &&
        std::find(t.deps.begin(), t.deps.end(), op.preferred_end_from) ==
            t.deps.end()) {
      t.deps.push_back(op.preferred_end_from);
    }
    switch (op.kind) {
      case PhysOpKind::kConst: t.kind = TaskKind::kConst; break;
      case PhysOpKind::kIndexLookup:
        t.kind = TaskKind::kLookup;
        t.pattern = op.pattern;
        break;
      case PhysOpKind::kProviderScan: t.kind = TaskKind::kScan; break;
      case PhysOpKind::kChainHop:
        assert(false && "ChainHop is a dynamic task, never compiled");
        break;
      case PhysOpKind::kShip:
        t.kind = TaskKind::kShip;
        t.ship_target = run.initiator;
        t.ship_category = net::Category::kResult;
        break;
      case PhysOpKind::kJoin: t.kind = TaskKind::kJoin; break;
      case PhysOpKind::kLeftJoin: t.kind = TaskKind::kLeftJoin; break;
      case PhysOpKind::kUnion: t.kind = TaskKind::kUnion; break;
      case PhysOpKind::kMinus: t.kind = TaskKind::kMinus; break;
      case PhysOpKind::kFilter: t.kind = TaskKind::kFilter; break;
      case PhysOpKind::kModifier: t.kind = TaskKind::kModifier; break;
      case PhysOpKind::kPostProcess: t.kind = TaskKind::kPostProcess; break;
    }
    add_task(run, std::move(t));
  }
  run.final_task = run.plan.post;
}

// ---------------------------------------------------------------------------
// Firing.

void DagExecutor::record(StateAction a) {
  if (state_log_ == nullptr) return;
  a.at = fire_at_;
  a.qid = fire_qid_;
  a.task = fire_task_;
  a.seq = fire_seq_++;
  state_log_->push_back(std::move(a));
}

void DagExecutor::fire(QueryRun& run, TaskId id) {
  const net::TrafficStats before = net().stats();
  const obs::SpanId parent = run.tasks[id].parent_span;
  reopen_span(parent);

  net::SimTime hint = 0;
  switch (run.tasks[id].kind) {
    case TaskKind::kConst: {
      Task& t = run.tasks[id];
      t.out.set.add(Binding{});  // the empty BGP has the empty solution
      t.out.site = run.initiator;
      t.out.ready_at = t.base;
      complete(run, id, t.out.ready_at);
      break;
    }
    case TaskKind::kLookup: hint = fire_lookup(run, id); break;
    case TaskKind::kScan: hint = fire_scan(run, id); break;
    case TaskKind::kScatterLeg: hint = fire_scatter_leg(run, id); break;
    case TaskKind::kChainHop: hint = fire_chain_hop(run, id); break;
    case TaskKind::kRelookup: hint = fire_relookup(run, id); break;
    case TaskKind::kShip: hint = fire_ship(run, id); break;
    case TaskKind::kJoin:
    case TaskKind::kLeftJoin:
    case TaskKind::kUnion:
    case TaskKind::kMinus: hint = fire_binary(run, id); break;
    case TaskKind::kFilter: hint = fire_filter(run, id); break;
    case TaskKind::kModifier: hint = fire_modifier(run, id); break;
    case TaskKind::kPostProcess: hint = fire_post(run, id); break;
    case TaskKind::kDescribeGather:
      hint = fire_describe_gather(run, id);
      break;
  }

  close_span(parent, hint);
  run.rep.traffic.accumulate(net().stats().delta_since(before));
}

net::SimTime DagExecutor::fire_lookup(QueryRun& run, TaskId id) {
  Task& t = run.tasks[id];
  std::optional<chord::Key> key;
  if (policy_.cache.enabled) key = overlay_->row_key(t.pattern.pattern);
  if (key.has_value()) {
    overlay::LocationCache& cache = overlay_->cache_for(run.initiator);
    const overlay::CacheStats before = cache.stats();
    const std::string klabel = std::to_string(overlay_->ring().truncate(*key));
    if (state_log_ != nullptr) {
      StateAction a;
      a.kind = StateAction::Kind::kCacheLookup;
      a.when = t.base;
      a.initiator = run.initiator;
      a.key = *key;
      record(std::move(a));
    }
    if (const overlay::CachedRow* row = cache.lookup(*key, t.base)) {
      // Hit: the row is served at the initiator — no ring lookup, no index
      // traffic, completion at the task's own start time.
      obs::SpanScope span(trace_, obs::SpanKind::kCache, "hit key " + klabel,
                          t.base, run.initiator);
      t.loc.providers = row->providers;
      t.loc.index_node = row->index_node;
      t.loc.ok = true;
      t.loc.completed_at = t.base;
      t.loc.cached = true;
      t.loc.snapshot_age_ms = t.base - row->inserted_at;
      span.finish(t.base);
      run.rep.cache.accumulate(cache.stats().delta_since(before));
      complete(run, id, t.base);
      return 0;
    }
    {
      obs::SpanScope span(trace_, obs::SpanKind::kCache, "miss key " + klabel,
                          t.base, run.initiator);
      span.finish(t.base);
    }
    t.loc = locate(t.pattern.pattern, run.initiator, t.base, run.rep);
    if (t.loc.ok && !t.loc.broadcast) {
      if (state_log_ != nullptr) {
        StateAction a;
        a.kind = StateAction::Kind::kCacheInsert;
        a.when = t.loc.completed_at;
        a.initiator = run.initiator;
        a.key = *key;
        a.index_node = t.loc.index_node;
        a.fetched_at = t.loc.completed_at;
        a.providers = t.loc.providers;
        record(std::move(a));
      }
      if (cache.insert(*key, t.loc.providers, t.loc.index_node,
                       t.loc.completed_at)) {
        // The key crossed the hot threshold: the cached row becomes a
        // leased extra replica — the owner pushes invalidations to this
        // initiator on every row mutation (subscription rides the lookup
        // response, so it is free).
        overlay_->subscribe_invalidations(*key, run.initiator);
        if (state_log_ != nullptr) {
          StateAction a;
          a.kind = StateAction::Kind::kSubscribe;
          a.when = t.loc.completed_at;
          a.initiator = run.initiator;
          a.key = *key;
          record(std::move(a));
        }
      }
    }
    run.rep.cache.accumulate(cache.stats().delta_since(before));
    complete(run, id, t.loc.completed_at);
    return 0;
  }
  t.loc = locate(t.pattern.pattern, run.initiator, t.base, run.rep);
  complete(run, id, t.loc.completed_at);
  return 0;
}

net::SimTime DagExecutor::fire_scan(QueryRun& run, TaskId id) {
  Task& task = run.tasks[id];
  const PhysicalOp* op =
      task.op != kNoOp ? &run.plan.ops[task.op] : nullptr;

  sparql::BgpPattern pat;
  overlay::HybridOverlay::Located loc;
  const Located* carry = nullptr;
  std::optional<net::NodeAddress> pend;

  if (op == nullptr) {
    // Dynamic DESCRIBE part: standalone pattern, no pend, no carry.
    pat = task.pattern;
    loc = run.tasks[task.deps.front()].loc;
    if (!loc.ok) {
      task.out.site = run.initiator;
      task.out.ready_at = task.base;
      complete(run, id, task.out.ready_at);
      return 0;
    }
  } else if (op->slot < 0) {
    // Standalone single-pattern BGP.
    pat = op->pattern;
    loc = run.tasks[op->lookup].loc;
    if (op->preferred_end_from != kNoOp) {
      pend = run.tasks[op->preferred_end_from].out.site;
    }
    if (!loc.ok) {
      task.out.site = run.initiator;
      task.out.ready_at = task.base;
      complete(run, id, task.out.ready_at);
      return 0;
    }
  } else {
    // One slot of a conjunction (Sect. IV-D).
    Task& g0 = run.tasks[op->group];
    const std::vector<OpId>& lookups = run.plan.ops[op->group].group_lookups;
    if (op->slot == 0) {
      // Resolve the runtime join order from the lookup frequencies.
      std::vector<optimizer::PatternStats> stats;
      stats.reserve(lookups.size());
      for (OpId l : lookups) {
        stats.push_back(optimizer::PatternStats{
            run.tasks[l].pattern.pattern, run.tasks[l].loc.providers});
      }
      g0.group = std::make_unique<GroupState>();
      if (policy_.frequency_join_order) {
        g0.group->order = optimizer::order_join_patterns(stats);
      } else {
        g0.group->order.resize(lookups.size());
        for (std::size_t i = 0; i < lookups.size(); ++i) {
          g0.group->order[i] = i;
        }
      }
      std::string note = "join-order:";
      for (std::size_t i : g0.group->order) {
        note += " " + run.tasks[lookups[i]].pattern.pattern.to_string();
      }
      run.rep.plan_notes.push_back(std::move(note));
      // Cached frequency snapshots may be stale; the staleness bound is the
      // cache TTL (unleased rows) — note the worst age so the ordering
      // decision is auditable (docs/caching.md).
      net::SimTime worst_age = 0;
      bool any_cached = false;
      for (OpId l : lookups) {
        if (run.tasks[l].loc.cached) {
          any_cached = true;
          worst_age = std::max(worst_age, run.tasks[l].loc.snapshot_age_ms);
        }
      }
      if (any_cached) {
        run.rep.plan_notes.push_back(
            "frequency-snapshot: cached, age " + std::to_string(worst_age) +
            " ms <= bound " + std::to_string(policy_.cache.ttl_ms) + " ms");
      }
    }
    const GroupState& g = *g0.group;
    const std::size_t i = g.order[static_cast<std::size_t>(op->slot)];
    pat = run.tasks[lookups[i]].pattern;
    loc = run.tasks[lookups[i]].loc;
    if (op->slot > 0) {
      const Task& prev = run.tasks[op->inputs.front()];
      if (prev.out.set.empty()) {
        // Legacy `break`: one empty operand empties the whole join; the
        // remaining slots pass the result through untouched (no traffic).
        task.out = prev.out;
        complete(run, id, task.out.ready_at);
        return 0;
      }
      task.carry = prev.out;
      task.has_carry = true;
      carry = &task.carry;
    }
    if (op->preferred_end_from != kNoOp) {
      pend = run.tasks[op->preferred_end_from].out.site;
    }
    if (policy_.overlap_aware_sites &&
        op->slot + 1 < static_cast<int>(g.order.size())) {
      std::vector<net::NodeAddress> shared = optimizer::provider_overlap(
          loc.providers,
          run.tasks[lookups[g.order[static_cast<std::size_t>(op->slot) + 1]]]
              .loc.providers);
      if (!shared.empty()) pend = shared.front();
    }
  }

  // --- exec_pattern, reified (same formulas as the legacy engine). ---
  const net::SimTime now = loc.completed_at;

  if (loc.providers.empty()) {
    task.out.site = carry != nullptr ? carry->site : run.initiator;
    task.out.ready_at =
        std::max(now, carry != nullptr ? carry->ready_at : now);
    complete(run, id, task.out.ready_at);
    return 0;
  }

  task.pattern_span = open_span(obs::SpanKind::kPattern,
                                pat.pattern.to_string(), now, run.initiator);

  PrimitiveStrategy strategy = policy_.primitive;
  if (policy_.adaptive && !loc.broadcast && loc.providers.size() > 1) {
    strategy = optimizer::choose_primitive_strategy(
        loc.providers, net().cost_model(), policy_.objectives);
    run.rep.plan_notes.push_back(
        std::string("adaptive: ") + pat.pattern.to_string() + " -> " +
        std::string(optimizer::primitive_strategy_name(strategy)));
  }

  task.pattern = pat;
  task.strategy = strategy;  // a later re-lookup re-orders with the same one
  const bool scatter_gather =
      strategy == PrimitiveStrategy::kBasic || loc.broadcast;

  if (scatter_gather) {
    // Basic strategy (Sect. IV-C): the index node is the assembly site; all
    // providers evaluate in parallel and ship their mappings to it. A
    // broadcast (fully unbound) pattern floods from the initiator instead.
    task.assembly = loc.broadcast ? run.initiator
                    : overlay_->ring().contains(loc.index_node)
                        ? overlay_->ring().address_of(loc.index_node)
                        : run.initiator;
    task.chain = loc.providers;
    task.remaining = task.chain.size();
    task.t = now;
    task.done_at = now;
    for (std::size_t k = 0; k < task.chain.size(); ++k) {
      Task leg;
      leg.kind = TaskKind::kScatterLeg;
      leg.scan = id;
      leg.position = k;
      leg.base = now;
      leg.parent_span = run.tasks[id].pattern_span;
      add_task(run, std::move(leg));
    }
    close_span(run.tasks[id].pattern_span, 0.0);
    return 0;
  }

  // Chain strategies: the sub-query travels a provider chain; every
  // provider merges its local mappings into the travelling set.
  std::vector<overlay::Provider> chain =
      optimizer::chain_order(loc.providers, strategy);
  if (policy_.overlap_aware_sites && pend.has_value()) {
    rotate_end_to_back(chain, *pend);
  }

  net::NodeAddress owner_addr =
      overlay_->ring().contains(loc.index_node)
          ? overlay_->ring().address_of(loc.index_node)
          : run.initiator;
  net::SimTime t;
  {
    obs::SpanScope ship_span(
        trace_, obs::SpanKind::kSubQueryShip,
        "to node " + std::to_string(chain.front().address), now, owner_addr);
    t = net().send(owner_addr, chain.front().address, subquery_wire_bytes(pat),
                   now, net::Category::kQuery);
    if (carry != nullptr) {
      t = std::max(t, net().send(carry->site, chain.front().address,
                                 net::wire::charged_bytes(carry->set),
                                 carry->ready_at, net::Category::kData,
                                 carry->set.byte_size()));
      task.carry_bytes = net::wire::charged_bytes(carry->set);
      task.carry_raw_bytes = carry->set.byte_size();
    }
    ship_span.finish(t);
  }
  task.chain = std::move(chain);
  task.t = t;
  task.sender = owner_addr;
  task.site = owner_addr;

  Task hop;
  hop.kind = TaskKind::kChainHop;
  hop.scan = id;
  hop.position = 0;
  hop.base = t;
  hop.parent_span = task.pattern_span;
  add_task(run, std::move(hop));
  close_span(run.tasks[id].pattern_span, 0.0);
  return 0;
}

net::SimTime DagExecutor::fire_scatter_leg(QueryRun& run, TaskId id) {
  Task& leg = run.tasks[id];
  Task& scan = run.tasks[leg.scan];
  const net::NodeAddress prov = scan.chain[leg.position].address;

  // A retry leg re-ships the sub-query after its backoff (leg.base carries
  // the backoff-delayed start; first attempts have base == scan.t).
  std::optional<obs::SpanScope> retry_span;
  if (leg.attempt > 0) {
    retry_span.emplace(trace_, obs::SpanKind::kRetry,
                       "attempt " + std::to_string(leg.attempt + 1) +
                           " node " + std::to_string(prov),
                       leg.base, prov);
  }
  net::SimTime t;
  {
    obs::SpanScope ship_span(trace_, obs::SpanKind::kSubQueryShip,
                             "to node " + std::to_string(prov), leg.base,
                             scan.assembly);
    t = net().send(scan.assembly, prov, subquery_wire_bytes(scan.pattern),
                   leg.base, net::Category::kQuery);
    ship_span.finish(t);
  }
  t = claim(prov, run.qid, t);
  {
    obs::SpanScope exec_span(trace_, obs::SpanKind::kLocalExec,
                             "node " + std::to_string(prov), t, prov);
    std::optional<SolutionSet> local =
        run_at_provider(prov, scan.pattern, t, run.initiator, run.rep);
    if (local.has_value()) {
      t = net().send(prov, scan.assembly, net::wire::charged_bytes(*local),
                     t, net::Category::kData, local->byte_size());
      scan.merged = sparql::deduplicated(
          sparql::set_union(scan.merged, *local), policy_.vectorized);
    } else if (policy_.retry.enabled() &&
               leg.attempt < policy_.retry.max_retries) {
      // Dead contact with attempts left: hand the slot to a replacement leg
      // starting after the deterministic backoff. The outstanding-leg count
      // is NOT decremented — the replacement inherits this slot.
      ++run.rep.retries;
      exec_span.finish(t);
      if (retry_span.has_value()) retry_span->finish(t);
      Task redo;
      redo.kind = TaskKind::kScatterLeg;
      redo.scan = leg.scan;
      redo.position = leg.position;
      redo.attempt = leg.attempt + 1;
      redo.base = t + policy_.retry.backoff_ms(leg.attempt + 1);
      redo.parent_span = scan.pattern_span;
      complete(run, id, t);
      add_task(run, std::move(redo));
      return t;
    } else {
      give_up_on_provider(prov, scan.pattern, t, run.initiator, run.rep);
      ++scan.failed_contacts;
    }
    exec_span.finish(t);
  }
  if (retry_span.has_value()) retry_span->finish(t);
  scan.done_at = std::max(scan.done_at, t);
  complete(run, id, t);

  assert(scan.remaining > 0);
  if (--scan.remaining > 0) return t;
  if (policy_.retry.relookup && !scan.relooked &&
      scan.failed_contacts == scan.chain.size()) {
    // Every provider of the row was given up on: fall back to lazy repair +
    // one fresh lookup instead of completing with nothing.
    spawn_relookup(run, leg.scan, scan.done_at);
    return t;
  }

  // Last leg: gather at the assembly site, joining any carried set there.
  Located out;
  out.set = std::move(scan.merged);
  out.site = scan.assembly;
  out.ready_at = scan.done_at;
  if (scan.has_carry) {
    obs::SpanScope ship_span(trace_, obs::SpanKind::kShip,
                             "carry to assembly", scan.carry.ready_at,
                             scan.assembly);
    Located c = ship(scan.carry, scan.assembly, net::Category::kData);
    ship_span.finish(c.ready_at);
    out.set = sparql::join(c.set, out.set, policy_.vectorized);
    out.ready_at = std::max(out.ready_at, c.ready_at);
  }
  scan.out = std::move(out);
  complete(run, leg.scan, scan.out.ready_at);
  return scan.out.ready_at;
}

net::SimTime DagExecutor::fire_chain_hop(QueryRun& run, TaskId id) {
  Task& hop = run.tasks[id];
  Task& scan = run.tasks[hop.scan];
  const net::NodeAddress prov = scan.chain[hop.position].address;

  // A retry hop re-sends the travelling payload from the previous sender
  // after its backoff (scan.t carries the backoff-delayed start).
  std::optional<obs::SpanScope> retry_span;
  net::SimTime start = scan.t;
  if (hop.attempt > 0) {
    retry_span.emplace(trace_, obs::SpanKind::kRetry,
                       "attempt " + std::to_string(hop.attempt + 1) +
                           " node " + std::to_string(prov),
                       start, prov);
    const std::size_t payload = subquery_wire_bytes(scan.pattern) +
                                net::wire::charged_bytes(scan.acc) +
                                scan.carry_bytes;
    const std::size_t raw_payload = subquery_wire_bytes(scan.pattern) +
                                    scan.acc.byte_size() +
                                    scan.carry_raw_bytes;
    start = net().send(scan.sender, prov, payload, start,
                       hop.position == 0 ? net::Category::kQuery
                                         : net::Category::kData,
                       raw_payload);
  }
  net::SimTime t = claim(prov, run.qid, start);
  {
    obs::SpanScope hop_span(trace_, obs::SpanKind::kChainHop,
                            "node " + std::to_string(prov), t, prov);
    std::optional<SolutionSet> local =
        run_at_provider(prov, scan.pattern, t, run.initiator, run.rep);
    if (local.has_value()) {
      SolutionSet contribution = scan.has_carry
                                     ? sparql::join(scan.carry.set, *local,
                                                    policy_.vectorized)
                                     : std::move(*local);
      scan.acc =
          sparql::deduplicated(sparql::set_union(scan.acc, contribution),
                               policy_.vectorized);
      scan.site = prov;
      scan.sender = prov;
    } else if (policy_.retry.enabled() &&
               hop.attempt < policy_.retry.max_retries) {
      ++run.rep.retries;
      hop_span.finish(t);
      if (retry_span.has_value()) retry_span->finish(t);
      scan.t = t + policy_.retry.backoff_ms(hop.attempt + 1);
      Task redo;
      redo.kind = TaskKind::kChainHop;
      redo.scan = hop.scan;
      redo.position = hop.position;
      redo.attempt = hop.attempt + 1;
      redo.base = scan.t;
      redo.parent_span = scan.pattern_span;
      complete(run, id, t);
      add_task(run, std::move(redo));
      return t;
    } else {
      give_up_on_provider(prov, scan.pattern, t, run.initiator, run.rep);
      ++scan.failed_contacts;
    }
    const bool last = hop.position + 1 >= scan.chain.size();
    if (!last) {
      const net::NodeAddress next = scan.chain[hop.position + 1].address;
      const std::size_t payload = subquery_wire_bytes(scan.pattern) +
                                  net::wire::charged_bytes(scan.acc) +
                                  scan.carry_bytes;
      const std::size_t raw_payload = subquery_wire_bytes(scan.pattern) +
                                      scan.acc.byte_size() +
                                      scan.carry_raw_bytes;
      t = net().send(scan.sender, next, payload, t, net::Category::kData,
                     raw_payload);
    }
    hop_span.finish(t);
  }
  if (retry_span.has_value()) retry_span->finish(t);
  scan.t = t;
  complete(run, id, t);

  const bool last = hop.position + 1 >= scan.chain.size();
  if (!last) {
    Task next_hop;
    next_hop.kind = TaskKind::kChainHop;
    next_hop.scan = hop.scan;
    next_hop.position = hop.position + 1;
    next_hop.base = t;
    next_hop.parent_span = scan.pattern_span;
    add_task(run, std::move(next_hop));
    return 0;
  }
  if (policy_.retry.relookup && !scan.relooked &&
      scan.failed_contacts == scan.chain.size()) {
    // The whole chain was given up on: lazy repair + one fresh lookup.
    spawn_relookup(run, hop.scan, t);
    return t;
  }
  scan.out.set = std::move(scan.acc);
  scan.out.site = scan.site;
  scan.out.ready_at = t;
  complete(run, hop.scan, t);
  return t;
}

void DagExecutor::spawn_relookup(QueryRun& run, TaskId scan_id,
                                 net::SimTime at) {
  Task rl;
  rl.kind = TaskKind::kRelookup;
  rl.scan = scan_id;
  rl.base = at;
  rl.parent_span = run.tasks[scan_id].pattern_span;
  add_task(run, std::move(rl));
}

net::SimTime DagExecutor::fire_relookup(QueryRun& run, TaskId id) {
  Task& rl = run.tasks[id];
  Task& scan = run.tasks[rl.scan];
  scan.relooked = true;
  ++run.rep.relookups;

  // The give-ups already purged the dead providers from the index row (lazy
  // repair); a fresh lookup returns whatever the repaired row holds now —
  // including providers that recovered and re-published while this scan was
  // timing out.
  overlay::HybridOverlay::Located loc =
      locate(scan.pattern.pattern, run.initiator, rl.base, run.rep);

  if (!loc.ok || loc.providers.empty()) {
    // Nothing came back: the scan completes empty (same formulas as the
    // empty-providers path of fire_scan). A failed lookup reports
    // completed_at = 0, so clamp to the re-lookup's own start time.
    const net::SimTime done = std::max(rl.base, loc.completed_at);
    scan.out.set = SolutionSet{};
    scan.out.site = scan.has_carry ? scan.carry.site : run.initiator;
    scan.out.ready_at =
        std::max(done, scan.has_carry ? scan.carry.ready_at : done);
    complete(run, id, done);
    complete(run, rl.scan, scan.out.ready_at);
    return scan.out.ready_at;
  }

  const bool scatter_gather =
      scan.strategy == PrimitiveStrategy::kBasic || loc.broadcast;
  scan.failed_contacts = 0;
  scan.chain.clear();

  if (scatter_gather) {
    scan.assembly = loc.broadcast ? run.initiator
                    : overlay_->ring().contains(loc.index_node)
                        ? overlay_->ring().address_of(loc.index_node)
                        : run.initiator;
    scan.chain = loc.providers;
    scan.remaining = scan.chain.size();
    scan.t = loc.completed_at;
    scan.done_at = loc.completed_at;
    for (std::size_t k = 0; k < scan.chain.size(); ++k) {
      Task leg;
      leg.kind = TaskKind::kScatterLeg;
      leg.scan = rl.scan;
      leg.position = k;
      leg.base = loc.completed_at;
      leg.parent_span = scan.pattern_span;
      add_task(run, std::move(leg));
    }
    complete(run, id, loc.completed_at);
    return 0;
  }

  std::vector<overlay::Provider> chain =
      optimizer::chain_order(loc.providers, scan.strategy);
  net::NodeAddress owner_addr =
      overlay_->ring().contains(loc.index_node)
          ? overlay_->ring().address_of(loc.index_node)
          : run.initiator;
  net::SimTime t;
  {
    obs::SpanScope ship_span(
        trace_, obs::SpanKind::kSubQueryShip,
        "to node " + std::to_string(chain.front().address), loc.completed_at,
        owner_addr);
    t = net().send(owner_addr, chain.front().address,
                   subquery_wire_bytes(scan.pattern), loc.completed_at,
                   net::Category::kQuery);
    if (scan.has_carry) {
      t = std::max(t, net().send(scan.carry.site, chain.front().address,
                                 net::wire::charged_bytes(scan.carry.set),
                                 std::max(loc.completed_at,
                                          scan.carry.ready_at),
                                 net::Category::kData,
                                 scan.carry.set.byte_size()));
      scan.carry_bytes = net::wire::charged_bytes(scan.carry.set);
      scan.carry_raw_bytes = scan.carry.set.byte_size();
    }
    ship_span.finish(t);
  }
  scan.chain = std::move(chain);
  scan.t = t;
  scan.sender = owner_addr;
  scan.site = owner_addr;

  Task hop;
  hop.kind = TaskKind::kChainHop;
  hop.scan = rl.scan;
  hop.position = 0;
  hop.base = t;
  hop.parent_span = scan.pattern_span;
  add_task(run, std::move(hop));
  complete(run, id, t);
  return 0;
}

net::SimTime DagExecutor::fire_ship(QueryRun& run, TaskId id) {
  Task& task = run.tasks[id];
  Located in = run.tasks[task.deps.front()].out;
  if (task.quiet_ship || trace_ == nullptr) {
    task.out = ship(std::move(in), task.ship_target, task.ship_category);
  } else {
    obs::SpanScope span(trace_, obs::SpanKind::kShip, "result to initiator",
                        in.ready_at, run.initiator);
    task.out = ship(std::move(in), task.ship_target, task.ship_category);
    span.finish(task.out.ready_at);
  }
  complete(run, id, task.out.ready_at);
  return 0;
}

net::SimTime DagExecutor::fire_binary(QueryRun& run, TaskId id) {
  Task& task = run.tasks[id];
  const PhysicalOp& op = run.plan.ops[task.op];
  Located l = run.tasks[op.inputs[0]].out;
  Located r = run.tasks[op.inputs[1]].out;
  Located out;
  switch (task.kind) {
    case TaskKind::kJoin: {
      auto [cl, cr] = colocate(std::move(l), std::move(r), run.initiator,
                               run.rep);
      out.set = sparql::join(cl.set, cr.set, policy_.vectorized);
      out.site = cl.site;
      out.ready_at = std::max(cl.ready_at, cr.ready_at);
      break;
    }
    case TaskKind::kLeftJoin: {
      auto [cl, cr] = colocate(std::move(l), std::move(r), run.initiator,
                               run.rep);
      out.set = sparql::left_join_conditioned(cl.set, cr.set, op.expr,
                                              policy_.vectorized);
      out.site = cl.site;
      out.ready_at = std::max(cl.ready_at, cr.ready_at);
      break;
    }
    case TaskKind::kMinus: {
      auto [cl, cr] = colocate(std::move(l), std::move(r), run.initiator,
                               run.rep);
      out.set = sparql::minus(cl.set, cr.set, policy_.vectorized);
      out.site = cl.site;
      out.ready_at = std::max(cl.ready_at, cr.ready_at);
      break;
    }
    case TaskKind::kUnion: {
      if (r.site != l.site) {
        // Fall back to the configured colocation policy between the two
        // branch sites (the overlap-aware end did not pan out).
        auto [cl, cr] = colocate(std::move(l), std::move(r), run.initiator,
                                 run.rep);
        l = std::move(cl);
        r = std::move(cr);
      }
      out.set = sparql::deduplicated(sparql::set_union(l.set, r.set),
                                     policy_.vectorized);
      out.site = l.site;
      out.ready_at = std::max(l.ready_at, r.ready_at);
      break;
    }
    default:
      assert(false && "fire_binary on a non-binary task");
  }
  task.out = std::move(out);
  complete(run, id, task.out.ready_at);
  return 0;
}

net::SimTime DagExecutor::fire_filter(QueryRun& run, TaskId id) {
  Task& task = run.tasks[id];
  const PhysicalOp& op = run.plan.ops[task.op];
  Located l = run.tasks[op.inputs.front()].out;
  l.set = sparql::filter_set(l.set, *op.expr, policy_.vectorized);
  task.out = std::move(l);
  complete(run, id, task.out.ready_at);
  return 0;
}

net::SimTime DagExecutor::fire_modifier(QueryRun& run, TaskId id) {
  Task& task = run.tasks[id];
  const PhysicalOp& op = run.plan.ops[task.op];
  Located l = run.tasks[op.inputs.front()].out;
  switch (op.modifier) {
    case sparql::AlgebraKind::kProject: {
      SolutionSet projected;
      for (const Binding& b : l.set.rows()) {
        projected.add(b.projected(op.vars));
      }
      l.set = std::move(projected);
      break;
    }
    case sparql::AlgebraKind::kDistinct:
    case sparql::AlgebraKind::kReduced:
      l.set = sparql::deduplicated(std::move(l.set), policy_.vectorized);
      break;
    case sparql::AlgebraKind::kOrderBy:
      sparql::order_solutions(l.set, op.order);
      break;
    case sparql::AlgebraKind::kSlice: {
      auto& rows = l.set.rows();
      std::size_t off = std::min<std::size_t>(rows.size(), op.offset);
      rows.erase(rows.begin(),
                 rows.begin() + static_cast<std::ptrdiff_t>(off));
      if (op.limit.has_value() && rows.size() > *op.limit) {
        rows.resize(*op.limit);
      }
      break;
    }
    default:
      break;
  }
  task.out = std::move(l);
  complete(run, id, task.out.ready_at);
  return 0;
}

net::SimTime DagExecutor::fire_post(QueryRun& run, TaskId id) {
  Task& task = run.tasks[id];
  Located in = run.tasks[task.deps.front()].out;

  if (run.query.form != sparql::QueryForm::kDescribe) {
    obs::SpanScope post_span(trace_, obs::SpanKind::kPostProcess,
                             "modifiers + projection", in.ready_at,
                             run.initiator);
    post_span.finish(in.ready_at);
    run.result =
        sparql::finalize_result(run.query, std::move(in.set), nullptr);
    run.rep.response_time = in.ready_at;
    complete(run, id, in.ready_at);
    return in.ready_at;
  }

  // Distributed DESCRIBE: resolve each target's surrounding triples with
  // two primitive pattern queries (t, ?, ?) and (?, ?, t). Parts run
  // sequentially (control-chained) to mirror the legacy engine's index
  // repair order; each starts its lookup at the result's arrival time.
  std::set<rdf::Term> target_set;
  for (const rdf::PatternTerm& pt : run.query.describe_targets) {
    if (const rdf::Term* t = rdf::term_of(pt)) {
      target_set.insert(*t);
    } else {
      const rdf::Variable& v = std::get<rdf::Variable>(pt);
      for (const Binding& b : in.set.rows()) {
        if (const rdf::Term* bound = b.get(v.name)) target_set.insert(*bound);
      }
    }
  }
  const net::SimTime t0 = in.ready_at;
  complete(run, id, t0);

  Task gather;
  gather.kind = TaskKind::kDescribeGather;
  gather.base = t0;
  gather.parent_span = run.root_span;

  TaskId prev_ship = kNoTask;
  for (const rdf::Term& t : target_set) {
    gather.targets.push_back(t);
    for (const rdf::TriplePattern& tp :
         {rdf::TriplePattern{t, rdf::Variable{"__p"}, rdf::Variable{"__o"}},
          rdf::TriplePattern{rdf::Variable{"__s"}, rdf::Variable{"__p"},
                             t}}) {
      Task lk;
      lk.kind = TaskKind::kLookup;
      lk.pattern = sparql::BgpPattern{tp, nullptr};
      lk.base = t0;
      lk.parent_span = run.root_span;
      if (prev_ship != kNoTask) lk.deps.push_back(prev_ship);
      TaskId lk_id = add_task(run, std::move(lk));

      Task sc;
      sc.kind = TaskKind::kScan;
      sc.pattern = sparql::BgpPattern{tp, nullptr};
      sc.base = t0;
      sc.parent_span = run.root_span;
      sc.deps.push_back(lk_id);
      TaskId sc_id = add_task(run, std::move(sc));

      Task sh;
      sh.kind = TaskKind::kShip;
      sh.quiet_ship = true;  // legacy DESCRIBE ships open no span
      sh.ship_target = run.initiator;
      sh.ship_category = net::Category::kResult;
      sh.base = t0;
      sh.parent_span = run.root_span;
      sh.deps.push_back(sc_id);
      prev_ship = add_task(run, std::move(sh));
      gather.parts.push_back(prev_ship);
    }
  }
  gather.deps = gather.parts;
  run.final_task = add_task(run, std::move(gather));
  return 0;
}

net::SimTime DagExecutor::fire_describe_gather(QueryRun& run, TaskId id) {
  Task& task = run.tasks[id];
  net::SimTime ready = task.base;
  std::set<rdf::Triple> triples;
  for (std::size_t i = 0; i < task.parts.size(); ++i) {
    const Located& part = run.tasks[task.parts[i]].out;
    ready = std::max(ready, part.ready_at);
    const rdf::Term& t = task.targets[i / 2];
    for (const Binding& b : part.set.rows()) {
      rdf::Triple tr{t, t, t};
      if (const rdf::Term* s = b.get("__s")) tr.s = *s;
      if (const rdf::Term* p = b.get("__p")) tr.p = *p;
      if (const rdf::Term* o = b.get("__o")) tr.o = *o;
      triples.insert(tr);
    }
  }
  run.result.form = sparql::QueryForm::kDescribe;
  run.result.graph.assign(triples.begin(), triples.end());
  run.rep.response_time = ready;
  complete(run, id, ready);
  return ready;
}

// ---------------------------------------------------------------------------

BatchResult DagExecutor::run(const std::vector<BatchQuery>& batch) {
  return run(batch, {});
}

BatchResult DagExecutor::run(const std::vector<BatchQuery>& batch,
                             const std::vector<std::uint32_t>& qids) {
  assert((qids.empty() || qids.size() == batch.size()) &&
         "qids must be empty (identity) or match the batch");
  runs_.clear();
  std::uint32_t max_qid = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    QueryRun& run = runs_.emplace_back();
    run.qid = qids.empty() ? static_cast<std::uint32_t>(i) : qids[i];
    run.query = batch[i].query;
    run.initiator = batch[i].initiator;
    max_qid = std::max(max_qid, run.qid);
  }
  run_of_qid_.assign(static_cast<std::size_t>(max_qid) + 1, 0);
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    run_of_qid_[runs_[i].qid] = static_cast<std::uint32_t>(i);
    setup_query(runs_[i]);
  }

  // Injected (fault-schedule) events share the queue under the reserved
  // query id, so they interleave with query tasks in one deterministic
  // (time, query, task) order — and still apply when stamped after the last
  // query task, so late recoveries are not silently dropped.
  for (std::size_t i = 0; i < opts_.injections.size(); ++i) {
    queue_.push(net::ReadyEvent{opts_.injections[i].at, net::kInjectionQueryId,
                                static_cast<std::uint32_t>(i)});
  }

  while (!queue_.empty()) {
    const net::ReadyEvent ev = queue_.pop();
    if (ev.query == net::kInjectionQueryId) {
      const InjectedEvent& inj = opts_.injections[ev.task];
      if (inj.apply) inj.apply(ev.at);
      continue;
    }
    fire_at_ = ev.at;
    fire_qid_ = ev.query;
    fire_task_ = ev.task;
    fire(runs_[run_of_qid_[ev.query]], ev.task);
  }

  BatchResult out;
  out.results.reserve(runs_.size());
  out.reports.reserve(runs_.size());
  for (QueryRun& run : runs_) {
    assert(run.final_task != kNoTask && run.tasks[run.final_task].done &&
           "batch drained with an incomplete query");
    // Traced executions carry their EXPLAIN tree in the plan notes, so any
    // consumer of the report can see the per-phase cost without the trace.
    if (trace_ != nullptr && run.root_span != obs::kNoSpan) {
      for (std::string& line : obs::explain_lines(*trace_, run.root_span)) {
        run.rep.plan_notes.push_back(std::move(line));
      }
    }
    out.makespan = std::max(out.makespan, run.rep.response_time);
    out.root_spans.push_back(run.root_span);
    out.results.push_back(std::move(run.result));
    out.reports.push_back(std::move(run.rep));
  }
  return out;
}

}  // namespace ahsw::dqp
