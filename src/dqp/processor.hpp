// Distributed SPARQL query processing (Sect. IV) — the paper's core
// contribution.
//
// Implements the Fig. 3 workflow end to end on top of the hybrid overlay:
//
//   query text --Parse--> AST --Transform--> SPARQL algebra
//     --Global optimization--> (filter pushing, join ordering, chain
//                               ordering, join-site selection)
//     --Sub-query shipping--> storage nodes evaluate locally
//     --In-network merging--> intermediate results travel provider chains
//     --Post-processing-----> modifiers applied at the query initiator.
//
// Strategy knobs correspond one-to-one to the processing variants the paper
// describes: Basic / Chain / FrequencyChain for primitive queries
// (Sect. IV-C), overlap-aware conjunction evaluation (IV-D), move-small /
// query-site / third-site OPTIONAL joins (IV-E), shared-provider union
// sites (IV-F) and filter pushing (IV-G). Benchmarks A/B these knobs; that
// is exactly the experimental study the paper defers to future work.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dqp/physical_plan.hpp"
#include "net/network.hpp"
#include "obs/trace.hpp"
#include "optimizer/planner.hpp"
#include "optimizer/rewriter.hpp"
#include "overlay/overlay.hpp"
#include "sparql/algebra.hpp"
#include "sparql/eval.hpp"

namespace ahsw::dqp {

// ExecutionPolicy and ExecutionEngine live in dqp/physical_plan.hpp (the
// plan compiler consumes them); this header re-exports them for callers.

/// Per-node queueing model for concurrent batches: when a node is serving
/// one query's work and another query's work arrives, the newcomer waits
/// until the node frees up, then occupies it for `service_ms`. Zero (the
/// default) disables contention entirely, so single-query DAG execution
/// stays byte-identical to the legacy recursive engine.
struct ServiceModel {
  double service_ms = 0.0;
};

/// One entry of a concurrent batch: a parsed query and the node issuing it.
struct BatchQuery {
  sparql::Query query;
  net::NodeAddress initiator = net::kNoAddress;
};

/// One externally injected event (fault, recovery, repair) merged into the
/// batch scheduler's event queue. The executor pops it in (time, query,
/// task) order under the reserved net::kInjectionQueryId, so injected
/// events interleave deterministically with query tasks: at equal sim time
/// they apply after the tasks stamped at that time. The callback receives
/// the event's sim time and may mutate the overlay/network (the fault
/// harness in src/fault builds these from a FaultSchedule). The query layer
/// itself stays fault-agnostic.
struct InjectedEvent {
  net::SimTime at = 0;
  std::string label;  // for diagnostics; not interpreted
  std::function<void(net::SimTime)> apply;
};

struct BatchOptions {
  ServiceModel service;
  /// Prefix every root span label with "q<id> " so interleaved traces stay
  /// attributable (shell `trace` output keys on it).
  bool label_query_ids = true;
  /// Events to merge into the batch's event queue, in any order (the queue
  /// sorts). Applied even when stamped after the last query task finishes.
  std::vector<InjectedEvent> injections;
  /// Worker threads for the parallel batch driver (docs/execution_engine.md
  /// "Parallel driver"). 1 (the default) runs today's serial scheduler.
  /// With workers > 1 the batch is partitioned by query id (qid % workers),
  /// each shard runs on a cloned overlay, and shared-state mutations are
  /// replayed on the master in (time, query, task) order. Parallelism
  /// changes wall-clock time only, never simulated time; traced batches
  /// record per-worker span forests the master grafts back in query order.
  /// The driver falls back to serial when the service model is on
  /// (cross-query contention couples shards) or when `injections` is
  /// non-empty without an `injection_factory`; the fallback reason is
  /// surfaced in every report's plan notes.
  int workers = 1;
  /// Rebuilds the injected events against a worker's cloned overlay, so
  /// every shard observes the same fault schedule on its own world. The
  /// `injections` above stay bound to the master (the merge step replays
  /// them there). Required for parallel execution of faulted batches; the
  /// fault harness sets both sides from one FaultSchedule.
  std::function<std::vector<InjectedEvent>(overlay::HybridOverlay&)>
      injection_factory;
};

/// What one query execution cost. Captures the paper's two optimization
/// criteria (total inter-site transmission; response time) plus plan
/// diagnostics.
struct ExecutionReport {
  net::TrafficStats traffic;        // messages/bytes charged by this query
  net::SimTime response_time = 0;   // initiator-observed completion time
  int index_lookups = 0;            // two-level index consultations
  int ring_hops = 0;                // Chord routing hops across lookups
  int providers_contacted = 0;      // storage nodes that ran sub-queries
  int dead_providers_skipped = 0;   // providers given up on after retries
  int retries = 0;                  // re-contacts after a dead-provider timeout
  int relookups = 0;                // lazy-repair re-lookups after exhaustion
  overlay::CacheStats cache;        // location-row cache activity (DAG only)
  bool complete = true;             // false if index rows were unreachable
  std::vector<std::string> plan_notes;  // human-readable plan decisions
};

/// Outcome of `execute_batch`: one result + report per query (batch order)
/// and the batch-level completion time. When a trace is attached,
/// `root_spans[i]` is query i's kQuery root span in that trace.
struct BatchResult {
  std::vector<sparql::QueryResult> results;
  std::vector<ExecutionReport> reports;
  std::vector<obs::SpanId> root_spans;
  net::SimTime makespan = 0;
  /// Parallel driver only (empty for serial runs): worker w's shard-local
  /// makespan (max response_time over its queries), for per-worker
  /// attribution in the E14 sweep. The batch makespan is their max.
  std::vector<net::SimTime> worker_makespans;
};

/// The distributed query processor. One instance per system; `execute` may
/// be called from any storage or index node address (the query initiator).
class DistributedQueryProcessor {
 public:
  explicit DistributedQueryProcessor(overlay::HybridOverlay& ov,
                                     ExecutionPolicy policy = {})
      : overlay_(&ov), policy_(policy) {}

  /// Parse, optimize and execute `query_text` as issued by `initiator`.
  /// The returned result is what the initiator hands its application; the
  /// report (if given) is filled with this query's cost.
  [[nodiscard]] sparql::QueryResult execute(std::string_view query_text,
                                            net::NodeAddress initiator,
                                            ExecutionReport* report = nullptr);

  /// Same, for an already parsed query.
  [[nodiscard]] sparql::QueryResult execute(const sparql::Query& q,
                                            net::NodeAddress initiator,
                                            ExecutionReport* report = nullptr);

  /// Execute N queries concurrently through one deterministic event
  /// scheduler (always the DAG engine, regardless of `policy().engine`).
  /// Operators of different queries interleave in (time, query, task)
  /// order; with `opts.service.service_ms > 0` a per-node service model
  /// charges queueing delay where their work overlaps. Deterministic: the
  /// same batch on the same system yields byte-identical reports + traces.
  [[nodiscard]] BatchResult execute_batch(const std::vector<BatchQuery>& batch,
                                          const BatchOptions& opts = {});

  /// Convenience overload: parses `query_texts[i]` and runs it from
  /// `initiators[i]` (sizes must match).
  [[nodiscard]] BatchResult execute_batch(
      const std::vector<std::string>& query_texts,
      const std::vector<net::NodeAddress>& initiators,
      const BatchOptions& opts = {});

  [[nodiscard]] ExecutionPolicy& policy() noexcept { return policy_; }
  [[nodiscard]] const ExecutionPolicy& policy() const noexcept {
    return policy_;
  }

  /// The optimized algebra `execute` would run for `query_text` (the
  /// Transform + Global-optimization stages only; used by tests/examples to
  /// inspect plans).
  [[nodiscard]] sparql::AlgebraPtr plan(std::string_view query_text) const;

  /// Attach a per-query trace: binds it to the overlay's network (messages
  /// and timeouts land in the active span) and forwards it to the overlay
  /// and ring so their steps open nested spans. Each `execute` then records
  /// one kQuery span tree and appends its EXPLAIN rendering to the report's
  /// plan_notes. Passing nullptr detaches (unbinding the previous trace).
  /// The processor never owns the trace.
  void set_trace(obs::QueryTrace* trace) {
    if (trace_ == trace) return;
    if (trace_ != nullptr) trace_->unbind();
    trace_ = trace;
    overlay_->set_trace(trace);
    if (trace_ != nullptr) trace_->bind(overlay_->network());
  }
  [[nodiscard]] obs::QueryTrace* trace() const noexcept { return trace_; }

 private:
  /// An intermediate solution set living at a node of the overlay.
  struct Located {
    sparql::SolutionSet set;
    net::NodeAddress site = net::kNoAddress;
    net::SimTime ready_at = 0;
  };

  /// Evaluate an algebra sub-tree. `preferred_end` asks pattern chains to
  /// finish at that node when it is among the providers (overlap-aware site
  /// selection).
  Located eval(const sparql::Algebra& a, net::NodeAddress initiator,
               net::SimTime now, ExecutionReport& rep,
               std::optional<net::NodeAddress> preferred_end);

  Located eval_bgp(const std::vector<sparql::BgpPattern>& bgp,
                   net::NodeAddress initiator, net::SimTime now,
                   ExecutionReport& rep,
                   std::optional<net::NodeAddress> preferred_end);

  /// Resolve one pattern through the index and evaluate it with the
  /// configured primitive strategy. With `carry`, the carried solutions are
  /// shipped along the chain and joined at each provider (IV-D).
  Located eval_pattern(const sparql::BgpPattern& p, net::NodeAddress initiator,
                       net::SimTime now, ExecutionReport& rep,
                       std::optional<net::NodeAddress> preferred_end,
                       const Located* carry);

  /// Locate providers of `p` and update report counters.
  overlay::HybridOverlay::Located locate(const rdf::TriplePattern& p,
                                         net::NodeAddress initiator,
                                         net::SimTime now,
                                         ExecutionReport& rep);

  /// Ship a located set to `target` (charged as data traffic).
  Located ship(Located from, net::NodeAddress target, ExecutionReport& rep,
               net::Category category = net::Category::kData);

  /// Local sub-query evaluation at a provider, skipping dead nodes with a
  /// timeout + lazy index repair. Returns nullopt when the provider is dead.
  std::optional<sparql::SolutionSet> run_at_provider(
      net::NodeAddress provider, const sparql::BgpPattern& p,
      net::SimTime& now, net::NodeAddress initiator, ExecutionReport& rep);

  /// Binary operation site selection (join-site policy) + shipping of both
  /// operands to the chosen site.
  std::pair<Located, Located> colocate(Located a, Located b,
                                       net::NodeAddress initiator,
                                       ExecutionReport& rep);

  /// Evaluate one pattern against pre-gathered provider information.
  Located exec_pattern(const sparql::BgpPattern& p,
                       const overlay::HybridOverlay::Located& loc,
                       net::NodeAddress initiator, ExecutionReport& rep,
                       std::optional<net::NodeAddress> preferred_end,
                       const Located* carry);

  overlay::HybridOverlay* overlay_;
  ExecutionPolicy policy_;
  obs::QueryTrace* trace_ = nullptr;
};

}  // namespace ahsw::dqp
