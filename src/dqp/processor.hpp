// Distributed SPARQL query processing (Sect. IV) — the paper's core
// contribution.
//
// Implements the Fig. 3 workflow end to end on top of the hybrid overlay:
//
//   query text --Parse--> AST --Transform--> SPARQL algebra
//     --Global optimization--> (filter pushing, join ordering, chain
//                               ordering, join-site selection)
//     --Sub-query shipping--> storage nodes evaluate locally
//     --In-network merging--> intermediate results travel provider chains
//     --Post-processing-----> modifiers applied at the query initiator.
//
// Strategy knobs correspond one-to-one to the processing variants the paper
// describes: Basic / Chain / FrequencyChain for primitive queries
// (Sect. IV-C), overlap-aware conjunction evaluation (IV-D), move-small /
// query-site / third-site OPTIONAL joins (IV-E), shared-provider union
// sites (IV-F) and filter pushing (IV-G). Benchmarks A/B these knobs; that
// is exactly the experimental study the paper defers to future work.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/network.hpp"
#include "obs/trace.hpp"
#include "optimizer/planner.hpp"
#include "optimizer/rewriter.hpp"
#include "overlay/overlay.hpp"
#include "sparql/algebra.hpp"
#include "sparql/eval.hpp"

namespace ahsw::dqp {

/// Plan-selection knobs (the paper's optimization alternatives).
struct ExecutionPolicy {
  optimizer::PrimitiveStrategy primitive =
      optimizer::PrimitiveStrategy::kFrequencyChain;
  optimizer::JoinSitePolicy join_site = optimizer::JoinSitePolicy::kMoveSmall;
  bool push_filters = true;          // Sect. IV-G rewrite
  bool frequency_join_order = true;  // IV-D: order AND patterns by frequency
  bool overlap_aware_sites = true;   // IV-D/IV-F: end chains at shared nodes

  /// Adaptive per-pattern strategy selection (the paper's Sect. V future
  /// work: plans under a mixture of traffic and response-time objectives).
  /// When set, `primitive` is ignored for index-served patterns and the
  /// strategy with the lowest weighted estimated cost is chosen from the
  /// location-table frequencies.
  bool adaptive = false;
  optimizer::ObjectiveWeights objectives;
};

/// What one query execution cost. Captures the paper's two optimization
/// criteria (total inter-site transmission; response time) plus plan
/// diagnostics.
struct ExecutionReport {
  net::TrafficStats traffic;        // messages/bytes charged by this query
  net::SimTime response_time = 0;   // initiator-observed completion time
  int index_lookups = 0;            // two-level index consultations
  int ring_hops = 0;                // Chord routing hops across lookups
  int providers_contacted = 0;      // storage nodes that ran sub-queries
  int dead_providers_skipped = 0;   // stale location entries hit (III-D)
  bool complete = true;             // false if index rows were unreachable
  std::vector<std::string> plan_notes;  // human-readable plan decisions
};

/// The distributed query processor. One instance per system; `execute` may
/// be called from any storage or index node address (the query initiator).
class DistributedQueryProcessor {
 public:
  explicit DistributedQueryProcessor(overlay::HybridOverlay& ov,
                                     ExecutionPolicy policy = {})
      : overlay_(&ov), policy_(policy) {}

  /// Parse, optimize and execute `query_text` as issued by `initiator`.
  /// The returned result is what the initiator hands its application; the
  /// report (if given) is filled with this query's cost.
  [[nodiscard]] sparql::QueryResult execute(std::string_view query_text,
                                            net::NodeAddress initiator,
                                            ExecutionReport* report = nullptr);

  /// Same, for an already parsed query.
  [[nodiscard]] sparql::QueryResult execute(const sparql::Query& q,
                                            net::NodeAddress initiator,
                                            ExecutionReport* report = nullptr);

  [[nodiscard]] ExecutionPolicy& policy() noexcept { return policy_; }
  [[nodiscard]] const ExecutionPolicy& policy() const noexcept {
    return policy_;
  }

  /// The optimized algebra `execute` would run for `query_text` (the
  /// Transform + Global-optimization stages only; used by tests/examples to
  /// inspect plans).
  [[nodiscard]] sparql::AlgebraPtr plan(std::string_view query_text) const;

  /// Attach a per-query trace: binds it to the overlay's network (messages
  /// and timeouts land in the active span) and forwards it to the overlay
  /// and ring so their steps open nested spans. Each `execute` then records
  /// one kQuery span tree and appends its EXPLAIN rendering to the report's
  /// plan_notes. Passing nullptr detaches (unbinding the previous trace).
  /// The processor never owns the trace.
  void set_trace(obs::QueryTrace* trace) {
    if (trace_ == trace) return;
    if (trace_ != nullptr) trace_->unbind();
    trace_ = trace;
    overlay_->set_trace(trace);
    if (trace_ != nullptr) trace_->bind(overlay_->network());
  }
  [[nodiscard]] obs::QueryTrace* trace() const noexcept { return trace_; }

 private:
  /// An intermediate solution set living at a node of the overlay.
  struct Located {
    sparql::SolutionSet set;
    net::NodeAddress site = net::kNoAddress;
    net::SimTime ready_at = 0;
  };

  /// Evaluate an algebra sub-tree. `preferred_end` asks pattern chains to
  /// finish at that node when it is among the providers (overlap-aware site
  /// selection).
  Located eval(const sparql::Algebra& a, net::NodeAddress initiator,
               net::SimTime now, ExecutionReport& rep,
               std::optional<net::NodeAddress> preferred_end);

  Located eval_bgp(const std::vector<sparql::BgpPattern>& bgp,
                   net::NodeAddress initiator, net::SimTime now,
                   ExecutionReport& rep,
                   std::optional<net::NodeAddress> preferred_end);

  /// Resolve one pattern through the index and evaluate it with the
  /// configured primitive strategy. With `carry`, the carried solutions are
  /// shipped along the chain and joined at each provider (IV-D).
  Located eval_pattern(const sparql::BgpPattern& p, net::NodeAddress initiator,
                       net::SimTime now, ExecutionReport& rep,
                       std::optional<net::NodeAddress> preferred_end,
                       const Located* carry);

  /// Locate providers of `p` and update report counters.
  overlay::HybridOverlay::Located locate(const rdf::TriplePattern& p,
                                         net::NodeAddress initiator,
                                         net::SimTime now,
                                         ExecutionReport& rep);

  /// Ship a located set to `target` (charged as data traffic).
  Located ship(Located from, net::NodeAddress target, ExecutionReport& rep,
               net::Category category = net::Category::kData);

  /// Local sub-query evaluation at a provider, skipping dead nodes with a
  /// timeout + lazy index repair. Returns nullopt when the provider is dead.
  std::optional<sparql::SolutionSet> run_at_provider(
      net::NodeAddress provider, const sparql::BgpPattern& p,
      net::SimTime& now, net::NodeAddress initiator, ExecutionReport& rep);

  /// Binary operation site selection (join-site policy) + shipping of both
  /// operands to the chosen site.
  std::pair<Located, Located> colocate(Located a, Located b,
                                       net::NodeAddress initiator,
                                       ExecutionReport& rep);

  /// Evaluate one pattern against pre-gathered provider information.
  Located exec_pattern(const sparql::BgpPattern& p,
                       const overlay::HybridOverlay::Located& loc,
                       net::NodeAddress initiator, ExecutionReport& rep,
                       std::optional<net::NodeAddress> preferred_end,
                       const Located* carry);

  overlay::HybridOverlay* overlay_;
  ExecutionPolicy policy_;
  obs::QueryTrace* trace_ = nullptr;
};

}  // namespace ahsw::dqp
