// Vocabulary IRIs used by the synthetic workloads (the FOAF terms the
// paper's running examples use, plus a small sensor vocabulary).
#pragma once

#include <string>
#include <string_view>

#include "rdf/term.hpp"

namespace ahsw::workload {

namespace foaf {
inline constexpr std::string_view kNs = "http://xmlns.com/foaf/0.1/";
inline constexpr std::string_view kName = "http://xmlns.com/foaf/0.1/name";
inline constexpr std::string_view kKnows = "http://xmlns.com/foaf/0.1/knows";
inline constexpr std::string_view kMbox = "http://xmlns.com/foaf/0.1/mbox";
inline constexpr std::string_view kNick = "http://xmlns.com/foaf/0.1/nick";
inline constexpr std::string_view kAge = "http://xmlns.com/foaf/0.1/age";
}  // namespace foaf

namespace ex {
inline constexpr std::string_view kNs = "http://example.org/ns#";
inline constexpr std::string_view kKnowsNothingAbout =
    "http://example.org/ns#knowsNothingAbout";
inline constexpr std::string_view kPerson = "http://example.org/people/";
}  // namespace ex

namespace sensor {
inline constexpr std::string_view kNs = "http://example.org/sensors#";
inline constexpr std::string_view kObservedBy =
    "http://example.org/sensors#observedBy";
inline constexpr std::string_view kMetric =
    "http://example.org/sensors#metric";
inline constexpr std::string_view kValue = "http://example.org/sensors#value";
inline constexpr std::string_view kTimestamp =
    "http://example.org/sensors#timestamp";
inline constexpr std::string_view kLocatedIn =
    "http://example.org/sensors#locatedIn";
inline constexpr std::string_view kSensorBase =
    "http://example.org/sensors/unit/";
inline constexpr std::string_view kObsBase = "http://example.org/sensors/obs/";
inline constexpr std::string_view kRoomBase =
    "http://example.org/sensors/room/";
}  // namespace sensor

/// IRI term for person #i.
[[nodiscard]] inline rdf::Term person_iri(std::size_t i) {
  return rdf::Term::iri(std::string(ex::kPerson) + "p" + std::to_string(i));
}

}  // namespace ahsw::workload
