// Testbed: one-call construction of a complete simulated system — network,
// ring of index nodes, attached storage nodes, and a partitioned dataset —
// used by integration tests, benchmarks and examples.
#pragma once

#include <vector>

#include "net/network.hpp"
#include "overlay/overlay.hpp"
#include "workload/generators.hpp"

namespace ahsw::workload {

struct TestbedConfig {
  std::size_t index_nodes = 4;
  std::size_t storage_nodes = 8;
  overlay::OverlayConfig overlay;
  net::CostModel cost;
  /// Dataset: FOAF graph partitioned over the storage nodes. Set
  /// foaf.persons = 0 for an empty system.
  FoafConfig foaf;
  PartitionConfig partition;  // nodes field is overridden by storage_nodes
  /// Converge fingers via the oracle after membership setup (true for
  /// steady-state experiments; false to study join traffic itself).
  bool oracle_fingers = true;
};

/// A fully assembled system. Member order matters: the network must outlive
/// (and be constructed before) the overlay.
class Testbed {
 public:
  explicit Testbed(const TestbedConfig& cfg);

  [[nodiscard]] net::Network& network() noexcept { return network_; }
  [[nodiscard]] overlay::HybridOverlay& overlay() noexcept { return overlay_; }
  [[nodiscard]] const std::vector<chord::Key>& index_ids() const noexcept {
    return index_ids_;
  }
  [[nodiscard]] const std::vector<net::NodeAddress>& storage_addrs()
      const noexcept {
    return storage_addrs_;
  }
  /// Time at which all data had been shared and indexed.
  [[nodiscard]] net::SimTime setup_completed_at() const noexcept {
    return setup_done_;
  }

 private:
  net::Network network_;
  overlay::HybridOverlay overlay_;
  std::vector<chord::Key> index_ids_;
  std::vector<net::NodeAddress> storage_addrs_;
  net::SimTime setup_done_ = 0;
};

}  // namespace ahsw::workload
