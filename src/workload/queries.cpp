#include "workload/queries.hpp"

#include <array>

#include "workload/vocab.hpp"

namespace ahsw::workload {

namespace {

constexpr std::string_view kPrologue =
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
    "PREFIX ns: <http://example.org/ns#>\n";

[[nodiscard]] std::string person_ref(const FoafConfig& cfg, common::Rng& rng) {
  return "<" + std::string(ex::kPerson) + "p" +
         std::to_string(rng.below(cfg.persons)) + ">";
}

[[nodiscard]] std::string surname(common::Rng& rng) {
  constexpr std::array kPool = {"Smith", "Johnson", "Williams", "Brown",
                                "Jones"};
  return std::string(kPool[rng.below(kPool.size())]);
}

}  // namespace

std::string_view query_class_name(QueryClass c) noexcept {
  switch (c) {
    case QueryClass::kPrimitive: return "primitive";
    case QueryClass::kConjunction: return "conjunction";
    case QueryClass::kOptional: return "optional";
    case QueryClass::kUnion: return "union";
    case QueryClass::kFilter: return "filter";
  }
  return "?";
}

std::string make_query(QueryClass cls, const FoafConfig& cfg,
                       common::Rng& rng) {
  std::string q(kPrologue);
  switch (cls) {
    case QueryClass::kPrimitive: {
      // One of the index-servable pattern shapes, alternating which
      // positions are bound.
      switch (rng.below(3)) {
        case 0:
          q += "SELECT ?x WHERE { ?x foaf:knows " + person_ref(cfg, rng) +
               " . }";
          break;
        case 1:
          q += "SELECT ?n WHERE { " + person_ref(cfg, rng) +
               " foaf:name ?n . }";
          break;
        default:
          q += "SELECT ?x ?y WHERE { ?x foaf:knows ?y . }";
      }
      return q;
    }
    case QueryClass::kConjunction: {
      q += "SELECT ?x ?y ?z WHERE { ?x foaf:knows ?z . "
           "?x ns:knowsNothingAbout ?y . ";
      if (rng.chance(0.5)) q += "?y foaf:knows ?z . ";
      q += "}";
      return q;
    }
    case QueryClass::kOptional: {
      q += "SELECT ?x ?y ?n WHERE { ?x foaf:knows ?y . "
           "OPTIONAL { ?y foaf:nick ?n . } }";
      return q;
    }
    case QueryClass::kUnion: {
      q += "SELECT ?x WHERE { { ?x foaf:knows " + person_ref(cfg, rng) +
           " . } UNION { ?x foaf:mbox ?m . } }";
      return q;
    }
    case QueryClass::kFilter: {
      q += "SELECT ?x ?name WHERE { ?x foaf:name ?name . "
           "?x foaf:knows ?y . FILTER regex(?name, \"" + surname(rng) +
           "\") }";
      return q;
    }
  }
  return q;
}

std::vector<std::string> generate_query_mix(std::size_t count,
                                            const FoafConfig& data_cfg,
                                            const QueryMixConfig& mix) {
  common::Rng rng(mix.seed);
  const double total = mix.primitive + mix.conjunction + mix.optional +
                       mix.union_ + mix.filter;
  std::vector<std::string> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    double u = rng.uniform() * total;
    QueryClass cls;
    if ((u -= mix.primitive) < 0) {
      cls = QueryClass::kPrimitive;
    } else if ((u -= mix.conjunction) < 0) {
      cls = QueryClass::kConjunction;
    } else if ((u -= mix.optional) < 0) {
      cls = QueryClass::kOptional;
    } else if ((u -= mix.union_) < 0) {
      cls = QueryClass::kUnion;
    } else {
      cls = QueryClass::kFilter;
    }
    out.push_back(make_query(cls, data_cfg, rng));
  }
  return out;
}

}  // namespace ahsw::workload
