// Synthetic dataset generators and the dataset partitioner.
//
// The paper has no published datasets; these generators produce the two
// kinds of data its motivation names — personal FOAF profiles and generic
// application data (modelled as sensor observations) — with Zipf-skewed
// term frequencies, which is what gives the location-table frequency
// statistics (Table I) their optimization bite.
#pragma once

#include <cstdint>
#include <vector>

#include "rdf/triple.hpp"

namespace ahsw::workload {

/// FOAF-like social graph: person nodes with names drawn from a surname
/// pool (so regex "Smith" filters select a tunable fraction), `knows` edges
/// with Zipf-skewed popularity, mailboxes, nicknames, ages, and sparse
/// `knowsNothingAbout` edges (the paper's Fig. 4 vocabulary).
struct FoafConfig {
  std::size_t persons = 200;
  double knows_per_person = 3.0;
  double popularity_skew = 0.8;  // Zipf exponent for edge targets
  std::size_t surname_pool = 20;
  double nick_fraction = 0.3;
  double mbox_fraction = 0.5;
  double knows_nothing_fraction = 0.2;
  std::uint64_t seed = 1;
};

[[nodiscard]] std::vector<rdf::Triple> generate_foaf(const FoafConfig& cfg);

/// Sensor observations: sensors located in rooms, each with a stream of
/// (metric, value, timestamp) observations. Numeric values exercise the
/// comparison/arithmetic filters.
struct SensorConfig {
  std::size_t sensors = 20;
  std::size_t rooms = 5;
  std::size_t observations_per_sensor = 20;
  std::size_t metrics = 4;  // temperature, humidity, ...
  std::uint64_t seed = 2;
};

[[nodiscard]] std::vector<rdf::Triple> generate_sensors(
    const SensorConfig& cfg);

/// Distribute a dataset over `nodes` providers. Every triple goes to
/// exactly one primary node (Zipf-skewed node popularity with exponent
/// `node_skew`; 0 = balanced); with probability `overlap` it is also given
/// to a second node — multiple providers sharing a triple is what makes
/// in-network duplicate elimination (Sect. IV-C) and shared-provider site
/// selection (IV-D/F) effective.
struct PartitionConfig {
  std::size_t nodes = 8;
  double node_skew = 0.0;
  double overlap = 0.1;
  std::uint64_t seed = 3;
};

[[nodiscard]] std::vector<std::vector<rdf::Triple>> partition(
    const std::vector<rdf::Triple>& data, const PartitionConfig& cfg);

}  // namespace ahsw::workload
