#include "workload/generators.hpp"

#include <array>

#include "common/rng.hpp"
#include "workload/vocab.hpp"

namespace ahsw::workload {

namespace {

constexpr std::array kFirstNames = {
    "Alice", "Bob",   "Carol", "Dave",  "Erin",  "Frank", "Grace", "Heidi",
    "Ivan",  "Judy",  "Ken",   "Laura", "Mallory", "Niaj", "Olivia", "Peggy",
};

constexpr std::array kSurnames = {
    "Smith",    "Johnson", "Williams", "Brown",   "Jones",  "Garcia",
    "Miller",   "Davis",   "Rodriguez", "Martinez", "Hernandez", "Lopez",
    "Gonzalez", "Wilson",  "Anderson", "Thomas",  "Taylor", "Moore",
    "Jackson",  "Martin",
};

constexpr std::array kMetricNames = {
    "temperature", "humidity", "pressure", "co2", "noise", "light",
};

}  // namespace

std::vector<rdf::Triple> generate_foaf(const FoafConfig& cfg) {
  common::Rng rng(cfg.seed);
  common::ZipfSampler popularity(cfg.persons == 0 ? 1 : cfg.persons,
                                 cfg.popularity_skew);
  std::vector<rdf::Triple> out;
  out.reserve(cfg.persons * 5);

  rdf::Term name_p = rdf::Term::iri(std::string(foaf::kName));
  rdf::Term knows_p = rdf::Term::iri(std::string(foaf::kKnows));
  rdf::Term mbox_p = rdf::Term::iri(std::string(foaf::kMbox));
  rdf::Term nick_p = rdf::Term::iri(std::string(foaf::kNick));
  rdf::Term age_p = rdf::Term::iri(std::string(foaf::kAge));
  rdf::Term kna_p = rdf::Term::iri(std::string(ex::kKnowsNothingAbout));

  for (std::size_t i = 0; i < cfg.persons; ++i) {
    rdf::Term person = person_iri(i);
    std::size_t surname_index =
        rng.below(std::min<std::uint64_t>(cfg.surname_pool, kSurnames.size()));
    std::string full_name =
        std::string(kFirstNames[rng.below(kFirstNames.size())]) + " " +
        std::string(kSurnames[surname_index]);
    out.push_back({person, name_p, rdf::Term::literal(full_name)});
    out.push_back(
        {person, age_p,
         rdf::Term::integer(static_cast<long long>(rng.between(18, 90)))});

    if (rng.chance(cfg.mbox_fraction)) {
      out.push_back({person, mbox_p,
                     rdf::Term::iri("mailto:p" + std::to_string(i) +
                                    "@example.org")});
    }
    if (rng.chance(cfg.nick_fraction)) {
      out.push_back({person, nick_p,
                     rdf::Term::literal("nick" + std::to_string(rng.below(
                                                     cfg.persons / 2 + 1)))});
    }

    // knows edges: targets are Zipf-popular (celebrities collect edges).
    auto edges = static_cast<std::size_t>(cfg.knows_per_person);
    if (rng.uniform() < cfg.knows_per_person - static_cast<double>(edges)) {
      ++edges;
    }
    for (std::size_t e = 0; e < edges; ++e) {
      std::size_t target = popularity.sample(rng);
      if (target == i) continue;
      out.push_back({person, knows_p, person_iri(target)});
    }
    if (rng.chance(cfg.knows_nothing_fraction)) {
      std::size_t target = rng.below(cfg.persons);
      if (target != i) {
        out.push_back({person, kna_p, person_iri(target)});
      }
    }
  }
  return out;
}

std::vector<rdf::Triple> generate_sensors(const SensorConfig& cfg) {
  common::Rng rng(cfg.seed);
  std::vector<rdf::Triple> out;
  out.reserve(cfg.sensors * (cfg.observations_per_sensor * 4 + 1));

  rdf::Term observed_by = rdf::Term::iri(std::string(sensor::kObservedBy));
  rdf::Term metric_p = rdf::Term::iri(std::string(sensor::kMetric));
  rdf::Term value_p = rdf::Term::iri(std::string(sensor::kValue));
  rdf::Term ts_p = rdf::Term::iri(std::string(sensor::kTimestamp));
  rdf::Term located_in = rdf::Term::iri(std::string(sensor::kLocatedIn));

  std::size_t obs_id = 0;
  for (std::size_t s = 0; s < cfg.sensors; ++s) {
    rdf::Term unit = rdf::Term::iri(std::string(sensor::kSensorBase) + "s" +
                                    std::to_string(s));
    rdf::Term room = rdf::Term::iri(std::string(sensor::kRoomBase) + "r" +
                                    std::to_string(rng.below(cfg.rooms)));
    out.push_back({unit, located_in, room});

    for (std::size_t o = 0; o < cfg.observations_per_sensor; ++o) {
      rdf::Term obs = rdf::Term::iri(std::string(sensor::kObsBase) + "o" +
                                     std::to_string(obs_id++));
      std::size_t metric = rng.below(
          std::min<std::uint64_t>(cfg.metrics, kMetricNames.size()));
      out.push_back({obs, observed_by, unit});
      out.push_back(
          {obs, metric_p, rdf::Term::literal(std::string(kMetricNames[metric]))});
      out.push_back(
          {obs, value_p,
           rdf::Term::integer(static_cast<long long>(rng.between(0, 100)))});
      out.push_back(
          {obs, ts_p,
           rdf::Term::integer(static_cast<long long>(1700000000 + obs_id))});
    }
  }
  return out;
}

std::vector<std::vector<rdf::Triple>> partition(
    const std::vector<rdf::Triple>& data, const PartitionConfig& cfg) {
  common::Rng rng(cfg.seed);
  std::size_t n = cfg.nodes == 0 ? 1 : cfg.nodes;
  common::ZipfSampler node_pick(n, cfg.node_skew);
  std::vector<std::vector<rdf::Triple>> out(n);
  for (const rdf::Triple& t : data) {
    std::size_t primary = node_pick.sample(rng);
    out[primary].push_back(t);
    if (cfg.overlap > 0.0 && n > 1 && rng.chance(cfg.overlap)) {
      std::size_t secondary = rng.below(n);
      if (secondary == primary) secondary = (secondary + 1) % n;
      out[secondary].push_back(t);
    }
  }
  return out;
}

}  // namespace ahsw::workload
