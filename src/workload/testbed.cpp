#include "workload/testbed.hpp"

namespace ahsw::workload {

Testbed::Testbed(const TestbedConfig& cfg)
    : network_(cfg.cost), overlay_(network_, cfg.overlay) {
  for (std::size_t i = 0; i < cfg.index_nodes; ++i) {
    index_ids_.push_back(overlay_.add_index_node(setup_done_));
  }
  if (cfg.oracle_fingers) overlay_.ring().fix_all_fingers_oracle();

  for (std::size_t i = 0; i < cfg.storage_nodes; ++i) {
    storage_addrs_.push_back(overlay_.add_storage_node());
  }

  if (cfg.foaf.persons > 0 && !storage_addrs_.empty()) {
    PartitionConfig part = cfg.partition;
    part.nodes = storage_addrs_.size();
    std::vector<std::vector<rdf::Triple>> shares =
        partition(generate_foaf(cfg.foaf), part);
    for (std::size_t i = 0; i < storage_addrs_.size(); ++i) {
      setup_done_ = std::max(
          setup_done_,
          overlay_.share_triples(storage_addrs_[i], shares[i], setup_done_));
    }
  }
  network_.reset_stats();  // experiments measure from a clean slate
}

}  // namespace ahsw::workload
