// Query workload generator: SPARQL query strings of the five classes the
// paper analyses (primitive, conjunction, optional, union, filter), over
// the FOAF vocabulary of the data generators.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "workload/generators.hpp"

namespace ahsw::workload {

enum class QueryClass {
  kPrimitive,    // single triple pattern (Fig. 5)
  kConjunction,  // BGP of 2-3 patterns (Fig. 6)
  kOptional,     // OPTIONAL block (Fig. 7)
  kUnion,        // UNION of two BGPs (Fig. 8)
  kFilter,       // FILTER over a BGP, optionally + OPTIONAL (Fig. 9)
};

[[nodiscard]] std::string_view query_class_name(QueryClass c) noexcept;

/// One random query of the given class, parameterized by entities that
/// exist in a generate_foaf(cfg) dataset.
[[nodiscard]] std::string make_query(QueryClass cls, const FoafConfig& cfg,
                                     common::Rng& rng);

/// Relative weights of each class in a mixed workload.
struct QueryMixConfig {
  double primitive = 0.4;
  double conjunction = 0.25;
  double optional = 0.15;
  double union_ = 0.1;
  double filter = 0.1;
  std::uint64_t seed = 7;
};

/// A reproducible stream of `count` query strings.
[[nodiscard]] std::vector<std::string> generate_query_mix(
    std::size_t count, const FoafConfig& data_cfg, const QueryMixConfig& mix);

}  // namespace ahsw::workload
