#include "check/audit.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>

#include "overlay/keys.hpp"

namespace ahsw::check {

namespace {

using chord::Key;

/// Drift the protocol repairs lazily: corrupt in a settled system, stale
/// while churn is in flight.
Severity drift(const AuditOptions& opt) {
  return opt.churned ? Severity::kStale : Severity::kCorrupt;
}

void add(AuditReport& rep, const AuditOptions& opt, Violation v) {
  ++rep.by_invariant[static_cast<int>(v.invariant)]
                    [static_cast<int>(v.severity)];
  if (v.severity == Severity::kCorrupt) {
    ++rep.corrupt;
  } else {
    ++rep.stale;
  }
  if (rep.violations.size() < opt.max_violations) {
    rep.violations.push_back(std::move(v));
  } else {
    rep.truncated = true;
  }
}

Violation make(Invariant i, Severity s, Key node, Key key,
               net::NodeAddress provider, std::string detail) {
  Violation v;
  v.invariant = i;
  v.severity = s;
  v.node = node;
  v.key = key;
  v.provider = provider;
  v.detail = std::move(detail);
  return v;
}

/// Successor over a sorted id list (the oracle restricted to live nodes).
Key successor_in(const std::vector<Key>& sorted, Key x) {
  auto it = std::lower_bound(sorted.begin(), sorted.end(), x);
  return it == sorted.end() ? sorted.front() : *it;
}

/// Predecessor over a sorted id list: the largest id strictly below x,
/// wrapping to the largest overall.
Key predecessor_in(const std::vector<Key>& sorted, Key x) {
  auto it = std::lower_bound(sorted.begin(), sorted.end(), x);
  return it == sorted.begin() ? sorted.back() : *std::prev(it);
}

/// The storage-side ground truth the index layer must agree with: liveness
/// plus the exact per-key triple counts recomputed from the store.
struct StorageFacts {
  bool live = false;
  std::map<Key, std::uint32_t> counts;
};

}  // namespace

std::string_view invariant_name(Invariant i) noexcept {
  switch (i) {
    case Invariant::kRingTopology:
      return "I1-ring-topology";
    case Invariant::kSixKey:
      return "I2-six-key";
    case Invariant::kLocationCoherence:
      return "I3-location-coherence";
    case Invariant::kReplication:
      return "I4-replication";
    case Invariant::kConservation:
      return "I5-conservation";
    case Invariant::kLiveness:
      return "I6-liveness";
  }
  return "unknown";
}

std::string_view severity_name(Severity s) noexcept {
  return s == Severity::kCorrupt ? "CORRUPT" : "STALE";
}

std::string Violation::to_string() const {
  std::ostringstream out;
  out << "[" << severity_name(severity) << "] " << invariant_name(invariant);
  if (node != 0) out << " node=" << node;
  if (key != 0) out << " key=" << key;
  if (provider != net::kNoAddress) out << " provider=" << provider;
  out << ": " << detail;
  return out.str();
}

std::size_t AuditReport::count(Invariant i) const noexcept {
  return by_invariant[static_cast<int>(i)][0] +
         by_invariant[static_cast<int>(i)][1];
}

std::size_t AuditReport::count(Invariant i, Severity s) const noexcept {
  return by_invariant[static_cast<int>(i)][static_cast<int>(s)];
}

std::string AuditReport::to_string() const {
  std::ostringstream out;
  out << "audit: " << corrupt << " corrupt, " << stale << " stale"
      << " (checked " << nodes_checked << " ring nodes, " << triples_checked
      << " triples, " << keys_checked << " key probes, " << rows_checked
      << " row entries, " << replica_rows_checked << " replica entries, "
      << cached_rows_checked << " cached rows)";
  for (const Violation& v : violations) out << "\n  " << v.to_string();
  if (truncated) out << "\n  ... (violation list truncated)";
  return out.str();
}

void audit_ring(const chord::Ring& ring, const net::Network& net,
                AuditReport& rep, const AuditOptions& opt) {
  const std::map<Key, chord::NodeState>& nodes = ring.nodes();
  if (nodes.empty()) return;

  std::vector<Key> live;
  live.reserve(nodes.size());
  for (const auto& [id, n] : nodes) {
    if (!net.is_failed(n.address)) live.push_back(id);
  }
  if (live.empty()) {
    add(rep, opt,
        make(Invariant::kRingTopology, Severity::kCorrupt, 0, 0,
             net::kNoAddress, "every ring node has failed"));
    return;
  }
  const int bits = ring.config().bits;
  const auto alive = [&](Key id) {
    auto it = nodes.find(id);
    return it != nodes.end() && !net.is_failed(it->second.address);
  };

  for (Key id : live) {
    const chord::NodeState& n = ring.state(id);
    ++rep.nodes_checked;

    // -- successor list --------------------------------------------------
    if (n.successors.empty()) {
      add(rep, opt,
          make(Invariant::kRingTopology, Severity::kCorrupt, id, 0,
               net::kNoAddress, "empty successor list"));
      continue;
    }
    if (live.size() == 1) {
      if (n.successors.front() != id) {
        add(rep, opt,
            make(Invariant::kRingTopology, drift(opt), id, 0, net::kNoAddress,
                 "singleton ring does not point at itself"));
      }
      continue;
    }
    std::optional<Key> first_live;
    for (Key s : n.successors) {
      if (nodes.count(s) == 0) {
        add(rep, opt,
            make(Invariant::kRingTopology, drift(opt), id, 0, net::kNoAddress,
                 "successor entry " + std::to_string(s) +
                     " points at a departed node"));
        continue;
      }
      if (alive(s)) {
        first_live = s;
        break;
      }
    }
    if (!first_live.has_value()) {
      add(rep, opt,
          make(Invariant::kRingTopology, Severity::kCorrupt, id, 0,
               net::kNoAddress,
               "every successor-list entry is dead (unrepairable from here)"));
    } else if (Key expect = successor_in(live, ring.truncate(id + 1));
               *first_live != expect) {
      add(rep, opt,
          make(Invariant::kRingTopology, drift(opt), id, 0, net::kNoAddress,
               "first live successor is " + std::to_string(*first_live) +
                   ", ring order expects " + std::to_string(expect)));
    }
    // Ordering: refresh_successor_list only ever emits nodes at strictly
    // increasing clockwise distance, so duplicates, self-entries or
    // out-of-order lists are impossible to produce legitimately — even mid
    // churn. A list that lags the settled ring (joins elsewhere not yet
    // stabilized in) is the documented lazy window.
    bool ordered = true;
    Key prev_dist = 0;
    for (Key s : n.successors) {
      Key dist = ring.truncate(s - id);
      if (dist == 0 || dist <= prev_dist) {
        ordered = false;
        break;
      }
      prev_dist = dist;
    }
    if (!ordered) {
      add(rep, opt,
          make(Invariant::kRingTopology, Severity::kCorrupt, id, 0,
               net::kNoAddress, "successor list is not in ring order"));
    } else if (!opt.churned) {
      std::vector<Key> expect;
      Key cursor = id;
      const std::size_t len = std::min(
          static_cast<std::size_t>(ring.config().successor_list_length),
          live.size() - 1);
      for (std::size_t i = 0; i < len; ++i) {
        cursor = successor_in(live, ring.truncate(cursor + 1));
        expect.push_back(cursor);
      }
      if (n.successors != expect) {
        add(rep, opt,
            make(Invariant::kRingTopology, Severity::kStale, id, 0,
                 net::kNoAddress,
                 "successor list lags the settled ring (awaiting "
                 "stabilization)"));
      }
    }

    // -- predecessor -----------------------------------------------------
    if (!n.predecessor.has_value()) {
      add(rep, opt,
          make(Invariant::kRingTopology, drift(opt), id, 0, net::kNoAddress,
               "predecessor unset"));
    } else if (nodes.count(*n.predecessor) == 0) {
      add(rep, opt,
          make(Invariant::kRingTopology, drift(opt), id, 0, net::kNoAddress,
               "predecessor " + std::to_string(*n.predecessor) +
                   " points at a departed node"));
    } else if (!alive(*n.predecessor)) {
      add(rep, opt,
          make(Invariant::kRingTopology, Severity::kStale, id, 0,
               net::kNoAddress,
               "predecessor " + std::to_string(*n.predecessor) +
                   " has failed (awaiting repair)"));
    } else if (Key expect = predecessor_in(live, id);
               *n.predecessor != expect) {
      add(rep, opt,
          make(Invariant::kRingTopology, drift(opt), id, 0, net::kNoAddress,
               "predecessor is " + std::to_string(*n.predecessor) +
                   ", ring order expects " + std::to_string(expect)));
    }

    // -- fingers ---------------------------------------------------------
    if (n.fingers.size() != static_cast<std::size_t>(bits)) {
      add(rep, opt,
          make(Invariant::kRingTopology, Severity::kCorrupt, id, 0,
               net::kNoAddress,
               "finger table has " + std::to_string(n.fingers.size()) +
                   " entries, expected " + std::to_string(bits)));
      continue;
    }
    // Fingers are maintained lazily (fix_fingers rounds), so divergence is
    // always stale, never corrupt — routing routes around it.
    std::size_t lagging = 0;
    for (int i = 0; i < bits; ++i) {
      Key target = ring.truncate(id + (Key{1} << i));
      Key finger = n.fingers[static_cast<std::size_t>(i)];
      if (nodes.count(finger) == 0 || !alive(finger) ||
          finger != successor_in(live, target)) {
        ++lagging;
      }
    }
    if (lagging > 0) {
      add(rep, opt,
          make(Invariant::kRingTopology, Severity::kStale, id, 0,
               net::kNoAddress,
               std::to_string(lagging) + "/" + std::to_string(bits) +
                   " fingers lag the live ring"));
    }
  }
}

void audit_overlay(const overlay::HybridOverlay& ov, AuditReport& rep,
                   const AuditOptions& opt) {
  const chord::Ring& ring = ov.ring();
  const net::Network& net = ov.network();
  audit_ring(ring, net, rep, opt);
  if (ring.nodes().empty()) return;

  std::vector<Key> live = ring.live_ids();
  if (live.empty()) return;

  // Every live ring member must host index-node state, and index state must
  // belong to a current ring member (failed members linger until repair).
  for (Key id : live) {
    if (ov.index_nodes().count(id) == 0) {
      add(rep, opt,
          make(Invariant::kRingTopology, Severity::kCorrupt, id, 0,
               net::kNoAddress, "live ring member has no index-node state"));
    }
  }
  for (const auto& [id, ix] : ov.index_nodes()) {
    if (!ring.contains(id)) {
      add(rep, opt,
          make(Invariant::kRingTopology, Severity::kCorrupt, id, 0,
               net::kNoAddress, "index-node state for a departed ring member"));
    }
  }

  // -- storage-side ground truth ----------------------------------------
  const std::size_t kinds =
      ov.config().pair_keys ? static_cast<std::size_t>(overlay::kIndexKeyKinds)
                            : 3u;
  std::map<net::NodeAddress, StorageFacts> facts;
  for (const auto& [addr, s] : ov.storage_nodes()) {
    StorageFacts f;
    f.live = !net.is_failed(addr);
    if (f.live) {
      s.store.for_each([&](const rdf::Triple& t) {
        std::array<Key, overlay::kIndexKeyKinds> keys = overlay::index_keys(t);
        for (std::size_t k = 0; k < kinds; ++k) ++f.counts[keys[k]];
        ++rep.triples_checked;
      });
      // I3, storage side: the node's publish bookkeeping must equal the
      // counts recomputed from its store — both are maintained in the same
      // share/unshare call, so any divergence is a lost update.
      if (f.counts != s.published) {
        add(rep, opt,
            make(Invariant::kLocationCoherence, Severity::kCorrupt, 0, 0, addr,
                 "publish bookkeeping diverges from store contents (" +
                     std::to_string(f.counts.size()) + " store keys vs " +
                     std::to_string(s.published.size()) + " published)"));
      }
    }
    facts.emplace(addr, std::move(f));
  }

  // -- I2: six-key completeness -----------------------------------------
  for (const auto& [addr, f] : facts) {
    if (!f.live) continue;
    for (const auto& [key, cnt] : f.counts) {
      ++rep.keys_checked;
      Key owner = successor_in(live, ring.truncate(key));
      auto it = ov.index_nodes().find(owner);
      if (it == ov.index_nodes().end()) continue;  // reported above under I1
      const overlay::Row* row = it->second.table.find_row(key);
      const bool indexed =
          row != nullptr &&
          std::any_of(row->providers.begin(), row->providers.end(),
                      [&](const overlay::Provider& p) {
                        return p.address == addr;
                      });
      if (!indexed) {
        add(rep, opt,
            make(Invariant::kSixKey, Severity::kCorrupt, owner, key, addr,
                 "shared triples (" + std::to_string(cnt) +
                     ") have no index entry at the owner"));
      }
    }
  }

  // -- I3: location-table coherence (index side) ------------------------
  for (const auto& [ixid, ix] : ov.index_nodes()) {
    if (!ring.contains(ixid) || net.is_failed(ix.address)) continue;
    for (const auto& [key, provs] : ix.table.rows()) {
      if (Key owner = successor_in(live, ring.truncate(key)); owner != ixid) {
        add(rep, opt,
            make(Invariant::kLocationCoherence, drift(opt), ixid, key,
                 net::kNoAddress,
                 "row held off-owner (ring owner is " + std::to_string(owner) +
                     ")"));
      }
      for (const overlay::Provider& p : provs) {
        ++rep.rows_checked;
        auto fit = facts.find(p.address);
        if (fit == facts.end()) {
          add(rep, opt,
              make(Invariant::kLocationCoherence, drift(opt), ixid, key,
                   p.address, "entry for a departed storage node"));
          continue;
        }
        if (!fit->second.live) {
          // The paper's lazy-repair model: stale until a query trips over
          // the dead provider and reports it (Sect. III-D).
          add(rep, opt,
              make(Invariant::kLocationCoherence, Severity::kStale, ixid, key,
                   p.address,
                   "entry for a failed storage node awaiting lazy repair"));
          continue;
        }
        auto cit = fit->second.counts.find(key);
        const std::uint32_t actual =
            cit == fit->second.counts.end() ? 0u : cit->second;
        if (p.frequency == actual) continue;
        if (actual == 0) {
          add(rep, opt,
              make(Invariant::kLocationCoherence, drift(opt), ixid, key,
                   p.address,
                   "stale pointer: provider holds no matching triples"));
        } else if (p.frequency > actual) {
          add(rep, opt,
              make(Invariant::kLocationCoherence, drift(opt), ixid, key,
                   p.address,
                   "frequency " + std::to_string(p.frequency) +
                       " inflated over actual " + std::to_string(actual) +
                       " (at-least-once replication window)"));
        } else {
          // Nothing in the protocol lowers a frequency below the store
          // count: an undercount is a lost publish, full stop.
          add(rep, opt,
              make(Invariant::kLocationCoherence, Severity::kCorrupt, ixid,
                   key, p.address,
                   "frequency " + std::to_string(p.frequency) +
                       " undercounts actual " + std::to_string(actual) +
                       " (lost publish)"));
        }
      }
    }
  }

  // -- I6: liveness (post-convergence) ----------------------------------
  // After fault::converge (repair + oracle purge) every failure has been
  // detected and purged from every copy, so a surviving reference to a
  // failed storage node — primary *or* replica — can only mean a purge
  // missed a copy. A stale replica row is exactly the state the
  // dead-provider resurrection bug fed back into primaries on repair.
  if (opt.converged) {
    for (const auto& [ixid, ix] : ov.index_nodes()) {
      if (!ring.contains(ixid) || net.is_failed(ix.address)) continue;
      const auto scan_rows = [&, ixid = ixid](const auto& table,
                                              std::string_view kind) {
        for (const auto& [key, provs] : table.rows()) {
          for (const overlay::Provider& p : provs) {
            if (!net.is_failed(p.address)) continue;
            add(rep, opt,
                make(Invariant::kLiveness, Severity::kCorrupt, ixid, key,
                     p.address,
                     std::string(kind) +
                         " row still lists a failed provider after "
                         "convergence"));
          }
        }
      };
      scan_rows(ix.table, "primary");
      scan_rows(ix.replicas, "replica");
    }
    // purge_failed_everywhere drops every cached row listing a failed
    // provider, so post-convergence the caches are as clean as the index.
    for (const auto& [initiator, cache] : ov.caches()) {
      for (const auto& [key, row] : cache.rows()) {
        for (const overlay::Provider& p : row.providers) {
          if (!net.is_failed(p.address)) continue;
          add(rep, opt,
              make(Invariant::kLiveness, Severity::kCorrupt, 0, key, p.address,
                   "cached row at initiator " + std::to_string(initiator) +
                       " still lists a failed provider after convergence"));
        }
      }
    }
  }

  // -- I3/I4 over cached rows (docs/caching.md) -------------------------
  // A cached row must match the authoritative row at the ring owner within
  // its documented staleness bound: leased rows are push-invalidated on
  // every owner mutation, so divergence is kCorrupt under I4 (a missed
  // push); unleased rows inside their TTL may serve up to ttl_ms-stale data
  // — divergence is the documented window, kStale under I3. An unleased row
  // past its TTL at options.now can never be served again and is skipped.
  for (const auto& [initiator, cache] : ov.caches()) {
    for (const auto& [key, row] : cache.rows()) {
      if (!row.leased && opt.now >= row.expires_at) continue;
      ++rep.cached_rows_checked;
      Key owner = successor_in(live, ring.truncate(key));
      auto oit = ov.index_nodes().find(owner);
      std::vector<overlay::Provider> authoritative;
      if (oit != ov.index_nodes().end()) {
        authoritative = oit->second.table.lookup(key);
      }
      if (row.providers == authoritative) continue;
      if (row.leased) {
        add(rep, opt,
            make(Invariant::kReplication, Severity::kCorrupt, owner, key,
                 net::kNoAddress,
                 "leased cached row at initiator " + std::to_string(initiator) +
                     " diverges from the owner (missed invalidation push)"));
      } else {
        add(rep, opt,
            make(Invariant::kLocationCoherence, Severity::kStale, owner, key,
                 net::kNoAddress,
                 "cached row at initiator " + std::to_string(initiator) +
                     " diverges from the owner within its TTL (documented "
                     "staleness bound)"));
      }
    }
  }

  // -- I4: replication --------------------------------------------------
  const int rf = ov.config().replication_factor;
  if (rf <= 1) return;
  for (const auto& [ixid, ix] : ov.index_nodes()) {
    if (!ring.contains(ixid) || net.is_failed(ix.address)) continue;
    // The designated holders are the first rf-1 successor-list entries
    // hosting index state — the same walk replicate_row performs.
    std::vector<Key> holders;
    for (Key succ : ring.state(ixid).successors) {
      if (holders.size() >= static_cast<std::size_t>(rf - 1)) break;
      if (succ == ixid || ov.index_nodes().count(succ) == 0) continue;
      holders.push_back(succ);
    }
    for (const auto& [key, provs] : ix.table.rows()) {
      for (Key h : holders) {
        const overlay::IndexNodeState& hs = ov.index_nodes().at(h);
        if (net.is_failed(hs.address)) continue;  // corpse awaiting repair
        const overlay::Row* hrow = hs.replicas.find_row(key);
        for (const overlay::Provider& p : provs) {
          ++rep.replica_rows_checked;
          const overlay::Provider* mirror = nullptr;
          if (hrow != nullptr) {
            for (const overlay::Provider& hp : hrow->providers) {
              if (hp.address == p.address) mirror = &hp;
            }
          }
          if (mirror == nullptr) {
            add(rep, opt,
                make(Invariant::kReplication, drift(opt), h, key, p.address,
                     "replica row missing at designated holder (owner " +
                         std::to_string(ixid) + ")"));
          } else if (mirror->frequency != p.frequency) {
            add(rep, opt,
                make(Invariant::kReplication, drift(opt), h, key, p.address,
                     "replica frequency " + std::to_string(mirror->frequency) +
                         " diverges from owner's " +
                         std::to_string(p.frequency)));
          }
        }
      }
    }
  }
  // Orphaned replicas: rows whose ownership moved away. Harmless (the
  // versioned reconcile merges them back on repair, rejecting stale
  // versions) but worth surfacing.
  for (const auto& [hid, hs] : ov.index_nodes()) {
    if (!ring.contains(hid) || net.is_failed(hs.address)) continue;
    for (const auto& [key, provs] : hs.replicas.rows()) {
      Key owner = successor_in(live, ring.truncate(key));
      auto oit = ov.index_nodes().find(owner);
      for (const overlay::Provider& p : provs) {
        bool mirrored = false;
        if (oit != ov.index_nodes().end()) {
          for (const overlay::Provider& op : oit->second.table.lookup(key)) {
            if (op.address == p.address) mirrored = true;
          }
        }
        if (!mirrored) {
          add(rep, opt,
              make(Invariant::kReplication, Severity::kStale, hid, key,
                   p.address,
                   "orphaned replica row (owner " + std::to_string(owner) +
                       " no longer lists the provider)"));
        }
      }
    }
  }
}

void audit_conservation(const obs::QueryTrace& trace,
                        const net::TrafficStats& delta, AuditReport& rep,
                        const AuditOptions& opt) {
  std::uint64_t messages = trace.unattributed_messages();
  std::uint64_t bytes = trace.unattributed_bytes();
  std::uint64_t raw_bytes = trace.unattributed_raw_bytes();
  std::uint64_t timeouts = trace.unattributed_timeouts();
  std::uint64_t messages_by[net::kCategoryCount] = {};
  std::uint64_t bytes_by[net::kCategoryCount] = {};
  for (const obs::Span& s : trace.spans()) {
    messages += s.messages;
    bytes += s.bytes;
    raw_bytes += s.raw_bytes;
    timeouts += s.timeouts;
    for (int c = 0; c < net::kCategoryCount; ++c) {
      messages_by[c] += s.messages_by[c];
      bytes_by[c] += s.bytes_by[c];
    }
  }
  const auto mismatch = [&](std::string_view what, std::uint64_t spans,
                            std::uint64_t stats) {
    add(rep, opt,
        make(Invariant::kConservation, Severity::kCorrupt, 0, 0,
             net::kNoAddress,
             std::string(what) + " do not conserve: span sum " +
                 std::to_string(spans) + " != traffic delta " +
                 std::to_string(stats)));
  };
  if (messages != delta.messages) mismatch("messages", messages, delta.messages);
  if (bytes != delta.bytes) mismatch("bytes", bytes, delta.bytes);
  if (raw_bytes != delta.raw_bytes) {
    mismatch("raw bytes", raw_bytes, delta.raw_bytes);
  }
  if (timeouts != delta.timeouts) mismatch("timeouts", timeouts, delta.timeouts);
  // Per-category sums exclude the unattributed bucket (it keeps no category
  // split), so spans can only ever account for at most the delta.
  for (int c = 0; c < net::kCategoryCount; ++c) {
    if (messages_by[c] > delta.messages_by[c] ||
        bytes_by[c] > delta.bytes_by[c]) {
      add(rep, opt,
          make(Invariant::kConservation, Severity::kCorrupt, 0, 0,
               net::kNoAddress,
               "category " +
                   std::string(net::category_name(
                       static_cast<net::Category>(c))) +
                   " books more span traffic than the delta contains"));
    }
  }
}

AuditReport audit(const overlay::HybridOverlay& overlay,
                  const AuditOptions& options) {
  AuditReport rep;
  audit_overlay(overlay, rep, options);
  return rep;
}

AuditReport audit(workload::Testbed& testbed, const AuditOptions& options) {
  return audit(testbed.overlay(), options);
}

bool audit_enabled() {
  static const bool enabled = [] {
    // Read once at first call, before any threads could exist.
    const char* v = std::getenv("AHSW_AUDIT");  // NOLINT(concurrency-mt-unsafe)
    if (v == nullptr) return false;
    std::string s(v);
    for (char& c : s) c = static_cast<char>(std::tolower(c));
    return !(s.empty() || s == "0" || s == "off" || s == "false" || s == "no");
  }();
  return enabled;
}

}  // namespace ahsw::check
