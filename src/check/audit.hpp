// Distributed-state invariant auditor.
//
// The paper states its correctness conditions but never mechanizes them:
// every shared triple must be indexed under all six keys at the ring node
// responsible for each key (Sect. III-B, Table I), location-table
// frequencies must agree with what storage nodes actually hold, and
// replicas must mirror predecessor rows through churn (Sect. III-C/D).
// This module turns those statements into a machine-checked audit over the
// simulator's ground-truth state:
//
//   I1 ring topology       — successor/predecessor symmetry, finger-table
//                            correctness, successor-list freshness.
//   I2 six-key completeness— every shared triple reachable under each of
//                            Hash(s), Hash(p), Hash(o), Hash(s,p),
//                            Hash(p,o), Hash(s,o) at the oracle owner.
//   I3 location coherence  — per-provider frequencies match actual store
//                            contents; storage-side publish bookkeeping
//                            matches the store; rows live at their owner.
//   I4 replication         — replica rows mirror the owner's live rows at
//                            the replication_factor successor holders.
//   I5 conservation        — span self-counters sum exactly to the
//                            TrafficStats delta of the traced execution.
//   I6 liveness            — after convergence (repair + purge, see
//                            fault::converge), no failed storage node may
//                            remain referenced by any primary or replica
//                            row. Gated on AuditOptions::converged.
//
// Violations carry a severity: kCorrupt means the invariant is broken in a
// way the protocol can never produce on its own (lost publish, wrong ring
// pointer in a settled system); kStale means a documented lazy-repair or
// at-least-once window (dead-provider pointers awaiting purge, replica
// drift between replication rounds, lazily maintained fingers). Audits of
// a churning system pass AuditOptions::churned so drift classes report as
// kStale; quiescent audits treat the same drift as kCorrupt.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "chord/ring.hpp"
#include "net/network.hpp"
#include "obs/trace.hpp"
#include "overlay/overlay.hpp"
#include "workload/testbed.hpp"

namespace ahsw::check {

enum class Invariant : std::uint8_t {
  kRingTopology = 0,       // I1
  kSixKey = 1,             // I2
  kLocationCoherence = 2,  // I3
  kReplication = 3,        // I4
  kConservation = 4,       // I5
  kLiveness = 5,           // I6
};
inline constexpr int kInvariantCount = 6;

[[nodiscard]] std::string_view invariant_name(Invariant i) noexcept;

enum class Severity : std::uint8_t {
  kStale = 0,    // documented lazy-repair / replication window
  kCorrupt = 1,  // state the protocol can never legitimately produce
};

[[nodiscard]] std::string_view severity_name(Severity s) noexcept;

/// One detected invariant violation, with enough structure for tests to
/// assert on the class and location without parsing the detail text.
struct Violation {
  Invariant invariant = Invariant::kRingTopology;
  Severity severity = Severity::kCorrupt;
  chord::Key node = 0;  // ring node involved (owner / holder); 0 if n/a
  chord::Key key = 0;   // index key involved; 0 if n/a
  net::NodeAddress provider = net::kNoAddress;  // storage node; kNoAddress n/a
  std::string detail;

  [[nodiscard]] std::string to_string() const;
};

struct AuditOptions {
  /// The system has seen injected churn (crashes, joins, repairs) since the
  /// last settled state: drift the protocol repairs lazily (stale provider
  /// pointers, replica divergence, successor-list drift) reports as kStale
  /// instead of kCorrupt.
  bool churned = false;
  /// The system has been driven to convergence (fault::converge: repair,
  /// finger fix-up, oracle purge of failed nodes): enables I6, which treats
  /// any surviving reference to a failed storage node — primary or replica —
  /// as kCorrupt. This is the invariant the dead-provider resurrection bug
  /// violated: the primary row was purged but a stale replica row revived
  /// the dead provider on the next repair.
  bool converged = false;
  /// At most this many violations are materialized into the report's
  /// vector; counters keep counting past the cap.
  std::size_t max_violations = 256;
  /// Audit time, used to age initiator-side cached location rows: an
  /// unleased cached row within its TTL may serve data up to ttl_ms stale
  /// (divergence reports as kStale under I3); one past its TTL can never be
  /// served again (LocationCache::lookup drops it), so it is skipped. A
  /// *leased* row is push-invalidated on every owner mutation, so any
  /// divergence is kCorrupt under I4 regardless of age.
  net::SimTime now = 0;
};

struct AuditReport {
  std::vector<Violation> violations;  // capped at AuditOptions::max_violations
  bool truncated = false;             // the cap was hit

  // Full counts (never capped).
  std::size_t corrupt = 0;
  std::size_t stale = 0;
  std::size_t by_invariant[kInvariantCount][2] = {};  // [invariant][severity]

  // Coverage counters, so "0 violations" is distinguishable from "checked
  // nothing".
  std::size_t nodes_checked = 0;         // ring nodes audited (I1)
  std::size_t triples_checked = 0;       // storage triples audited (I2)
  std::size_t keys_checked = 0;          // (triple x key-kind) probes (I2)
  std::size_t rows_checked = 0;          // primary row entries audited (I3)
  std::size_t replica_rows_checked = 0;  // replica row entries audited (I4)
  std::size_t cached_rows_checked = 0;   // initiator-cached rows audited (I3/I4)

  /// No corrupt violations (stale drift allowed).
  [[nodiscard]] bool clean() const noexcept { return corrupt == 0; }
  /// No violations at all.
  [[nodiscard]] bool pristine() const noexcept {
    return corrupt == 0 && stale == 0;
  }
  [[nodiscard]] std::size_t count(Invariant i) const noexcept;
  [[nodiscard]] std::size_t count(Invariant i, Severity s) const noexcept;
  [[nodiscard]] bool has(Invariant i) const noexcept { return count(i) > 0; }

  /// Multi-line human-readable report: one summary line plus one line per
  /// materialized violation.
  [[nodiscard]] std::string to_string() const;
};

/// I1 over a bare ring (no index layer). Failed-but-unrepaired nodes are
/// skipped as auditees but considered when classifying pointers to them.
void audit_ring(const chord::Ring& ring, const net::Network& net,
                AuditReport& report, const AuditOptions& options = {});

/// I1-I4 over a full overlay (ring + location tables + replicas + stores).
void audit_overlay(const overlay::HybridOverlay& overlay, AuditReport& report,
                   const AuditOptions& options = {});

/// I5: every charged message/byte/timeout of a traced execution lands in
/// exactly one span (or the trace's unattributed bucket), so span
/// self-counters plus the unattributed counters must sum exactly to the
/// TrafficStats delta of the same window. `delta` is the stats delta over
/// the window the trace was bound; any mismatch is kCorrupt.
void audit_conservation(const obs::QueryTrace& trace,
                        const net::TrafficStats& delta, AuditReport& report,
                        const AuditOptions& options = {});

/// One-call audits.
[[nodiscard]] AuditReport audit(const overlay::HybridOverlay& overlay,
                                const AuditOptions& options = {});
[[nodiscard]] AuditReport audit(workload::Testbed& testbed,
                                const AuditOptions& options = {});

/// True when the AHSW_AUDIT environment variable asks for audits
/// ("1"/"ON"/"on"/"true"/...; "0"/"OFF"/"false"/unset disable). Gates the
/// audit hooks in stress tests and benchmarks.
[[nodiscard]] bool audit_enabled();

}  // namespace ahsw::check
