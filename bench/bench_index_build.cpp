// E2 — two-level index construction cost (Sect. III-B): publishing six keys
// per shared triple. Sweeps dataset size and index-node count; reports
// index-maintenance messages/bytes and the (parallel) completion time.
#include "bench_util.hpp"

namespace {

using namespace ahsw;

void BM_IndexBuild(benchmark::State& state) {
  const auto persons = static_cast<std::size_t>(state.range(0));
  const auto index_nodes = static_cast<std::size_t>(state.range(1));

  for (auto _ : state) {
    net::Network network;
    overlay::HybridOverlay ov(network);
    for (std::size_t i = 0; i < index_nodes; ++i) ov.add_index_node();
    ov.ring().fix_all_fingers_oracle();
    std::vector<net::NodeAddress> storage;
    for (int i = 0; i < 16; ++i) storage.push_back(ov.add_storage_node());

    workload::FoafConfig foaf;
    foaf.persons = persons;
    workload::PartitionConfig part;
    part.nodes = storage.size();
    auto shares = workload::partition(workload::generate_foaf(foaf), part);

    network.reset_stats();
    net::SimTime done = 0;
    std::size_t triples = 0;
    for (std::size_t i = 0; i < storage.size(); ++i) {
      done = std::max(done, ov.share_triples(storage[i], shares[i], 0));
      triples += shares[i].size();
    }
    auto idx = static_cast<std::size_t>(net::Category::kIndex);
    auto routing = static_cast<std::size_t>(net::Category::kRouting);
    state.counters["triples"] = static_cast<double>(triples);
    state.counters["index_msgs"] =
        static_cast<double>(network.stats().messages_by[idx]);
    state.counters["routing_msgs"] =
        static_cast<double>(network.stats().messages_by[routing]);
    state.counters["index_bytes"] =
        static_cast<double>(network.stats().bytes_by[idx]);
    state.counters["msgs_per_triple"] =
        static_cast<double>(network.stats().messages) /
        static_cast<double>(triples == 0 ? 1 : triples);
    state.counters["build_time_ms"] = done;
    benchutil::record_raw_json("build/persons=" + std::to_string(persons) +
                                   "/index=" + std::to_string(index_nodes),
                               network.stats(), done);
  }
}

// Sweep dataset size at 32 index nodes, then index-node count at 800
// persons.
BENCHMARK(BM_IndexBuild)
    ->Args({200, 32})
    ->Args({400, 32})
    ->Args({800, 32})
    ->Args({1600, 32})
    ->Args({3200, 32})
    ->Args({800, 8})
    ->Args({800, 16})
    ->Args({800, 64})
    ->Args({800, 128})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_IndexReplicationOverhead(benchmark::State& state) {
  // Replication factor sweep: extra index traffic bought for fault
  // tolerance (Sect. III-D).
  const auto replication = static_cast<int>(state.range(0));
  for (auto _ : state) {
    net::Network network;
    overlay::OverlayConfig cfg;
    cfg.replication_factor = replication;
    overlay::HybridOverlay ov(network, cfg);
    for (int i = 0; i < 16; ++i) ov.add_index_node();
    ov.ring().fix_all_fingers_oracle();
    std::vector<net::NodeAddress> storage;
    for (int i = 0; i < 8; ++i) storage.push_back(ov.add_storage_node());
    workload::FoafConfig foaf;
    foaf.persons = 400;
    workload::PartitionConfig part;
    part.nodes = storage.size();
    auto shares = workload::partition(workload::generate_foaf(foaf), part);
    network.reset_stats();
    for (std::size_t i = 0; i < storage.size(); ++i) {
      ov.share_triples(storage[i], shares[i], 0);
    }
    auto idx = static_cast<std::size_t>(net::Category::kIndex);
    state.counters["index_msgs"] =
        static_cast<double>(network.stats().messages_by[idx]);
    state.counters["index_bytes"] =
        static_cast<double>(network.stats().bytes_by[idx]);
    benchutil::record_raw_json("replication=" + std::to_string(replication),
                               network.stats());
  }
}

BENCHMARK(BM_IndexReplicationOverhead)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
