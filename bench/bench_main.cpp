// Custom benchmark entry point: understands `--audit` (run the invariant
// auditor over every benchmark system; corruption aborts the run) before
// handing the remaining flags to Google Benchmark. AHSW_AUDIT=1 in the
// environment enables auditing too.
#include <benchmark/benchmark.h>

#include <cstring>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--audit") == 0) {
      ahsw::benchutil::set_audit(true);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
