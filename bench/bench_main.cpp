// Custom benchmark entry point: understands `--audit` (run the invariant
// auditor over every benchmark system; corruption aborts the run) and
// `--workers N` (parallel batch driver worker count for batch benchmarks)
// before handing the remaining flags to Google Benchmark. AHSW_AUDIT=1 and
// AHSW_WORKERS=N in the environment work too.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--audit") == 0) {
      ahsw::benchutil::set_audit(true);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      ahsw::benchutil::set_workers(std::atoi(argv[++i]));
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      ahsw::benchutil::set_workers(std::atoi(argv[i] + 10));
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
