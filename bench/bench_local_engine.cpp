// E10 — local-engine micro-costs: the solution-set algebra every node runs
// (join, left join, union, minus, filter) and BGP matching against a local
// store. These are real wall-clock benchmarks (the only ones in the suite),
// establishing that local evaluation is cheap relative to the simulated
// communication the other experiments measure.
#include <benchmark/benchmark.h>

// ahsw-lint: allow(D1) E10 measures real wall-clock micro-costs by design;
// no simulated-time result depends on these readings.
#include <chrono>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "rdf/store.hpp"
#include "sparql/eval.hpp"

namespace {

using namespace ahsw;
using sparql::Binding;
using sparql::SolutionSet;

/// These benchmarks measure wall clock, not simulated traffic; the JSON
/// record carries the mean per-iteration time and zero traffic.
template <typename Body>
void run_timed(benchmark::State& state, const std::string& name, Body body) {
  std::uint64_t iters = 0;
  // ahsw-lint: allow(D1) wall-clock is the measurand here, not an input to
  // any simulated result.
  auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    body();
    ++iters;
  }
  // ahsw-lint: allow(D1) second wall-clock read closing the measurement.
  auto t1 = std::chrono::steady_clock::now();
  double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  benchutil::record_raw_json(name, net::TrafficStats{},
                             iters > 0 ? ms / static_cast<double>(iters) : 0.0,
                             iters > 0 ? iters : 1);
}

SolutionSet make_set(std::size_t rows, std::size_t domain,
                     const std::string& shared_var,
                     const std::string& own_var, std::uint64_t seed) {
  common::Rng rng(seed);
  SolutionSet out;
  for (std::size_t i = 0; i < rows; ++i) {
    Binding b;
    b.set(shared_var, rdf::Term::iri("http://v" + std::to_string(
                                                      rng.below(domain))));
    b.set(own_var, rdf::Term::integer(static_cast<long long>(i)));
    out.add(std::move(b));
  }
  return out;
}

void BM_SolutionJoin(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  SolutionSet a = make_set(n, n / 4 + 1, "x", "a", 1);
  SolutionSet b = make_set(n, n / 4 + 1, "x", "b", 2);
  run_timed(state, "join/n=" + std::to_string(n),
            [&] { benchmark::DoNotOptimize(sparql::join(a, b)); });
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SolutionJoin)->Range(64, 4096)->Complexity();

void BM_SolutionLeftJoin(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  SolutionSet a = make_set(n, n / 4 + 1, "x", "a", 3);
  SolutionSet b = make_set(n / 2, n / 4 + 1, "x", "b", 4);
  run_timed(state, "left-join/n=" + std::to_string(n),
            [&] { benchmark::DoNotOptimize(sparql::left_join(a, b)); });
}
BENCHMARK(BM_SolutionLeftJoin)->Range(64, 1024);

void BM_SolutionMinus(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  SolutionSet a = make_set(n, n / 4 + 1, "x", "a", 5);
  SolutionSet b = make_set(n / 4, n / 4 + 1, "x", "b", 6);
  run_timed(state, "minus/n=" + std::to_string(n),
            [&] { benchmark::DoNotOptimize(sparql::minus(a, b)); });
}
BENCHMARK(BM_SolutionMinus)->Range(64, 1024);

void BM_SolutionDedup(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  SolutionSet a = make_set(n, 16, "x", "a", 7);
  run_timed(state, "dedup/n=" + std::to_string(n), [&] {
    SolutionSet copy = a;
    benchmark::DoNotOptimize(sparql::deduplicated(std::move(copy)));
  });
}
BENCHMARK(BM_SolutionDedup)->Range(64, 4096);

void BM_FilterEvaluation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  SolutionSet a = make_set(n, n, "x", "a", 8);
  sparql::ExprPtr cond = sparql::Expr::binary(
      sparql::ExprKind::kGt, sparql::Expr::variable("a"),
      sparql::Expr::constant_term(
          rdf::Term::integer(static_cast<long long>(n / 2))));
  run_timed(state, "filter/n=" + std::to_string(n),
            [&] { benchmark::DoNotOptimize(sparql::filter_set(a, *cond)); });
}
BENCHMARK(BM_FilterEvaluation)->Range(64, 4096);

rdf::TripleStore make_store(std::size_t triples) {
  common::Rng rng(9);
  rdf::TripleStore store;
  while (store.size() < triples) {
    store.insert(
        {rdf::Term::iri("http://s" + std::to_string(rng.below(triples / 4 + 1))),
         rdf::Term::iri("http://p" + std::to_string(rng.below(8))),
         rdf::Term::iri("http://o" + std::to_string(rng.below(triples / 2 + 1)))});
  }
  return store;
}

void BM_StorePatternMatch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rdf::TripleStore store = make_store(n);
  rdf::TriplePattern pattern{rdf::Variable{"s"}, rdf::Term::iri("http://p3"),
                             rdf::Variable{"o"}};
  run_timed(state, "store-match/n=" + std::to_string(n),
            [&] { benchmark::DoNotOptimize(store.count_matches(pattern)); });
}
BENCHMARK(BM_StorePatternMatch)->Range(256, 16384);

void BM_LocalBgpEvaluation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rdf::TripleStore store = make_store(n);
  sparql::LocalEngine engine(store);
  std::vector<sparql::BgpPattern> bgp = {
      {rdf::TriplePattern{rdf::Variable{"x"}, rdf::Term::iri("http://p1"),
                          rdf::Variable{"y"}},
       nullptr},
      {rdf::TriplePattern{rdf::Variable{"y"}, rdf::Term::iri("http://p2"),
                          rdf::Variable{"z"}},
       nullptr}};
  run_timed(state, "local-bgp/n=" + std::to_string(n),
            [&] { benchmark::DoNotOptimize(engine.evaluate_bgp(bgp)); });
}
BENCHMARK(BM_LocalBgpEvaluation)->Range(256, 8192);

}  // namespace
