// E4 — conjunction graph patterns (Sect. IV-D): frequency-driven join
// ordering and overlap-aware execution-site selection vs the naive plan.
//
// Expected shape: ordering by ascending estimated cardinality shrinks the
// travelling intermediate sets; ending chains at overlap providers removes
// whole shipments. Both effects grow with selectivity spread and overlap.
#include "bench_util.hpp"
#include "workload/vocab.hpp"

namespace {

using namespace ahsw;

workload::Testbed make_bed(std::size_t persons, double overlap) {
  workload::TestbedConfig cfg;
  cfg.index_nodes = 8;
  cfg.storage_nodes = 10;
  cfg.foaf.persons = persons;
  cfg.foaf.nick_fraction = 0.15;  // nick is selective, knows is bulky
  cfg.foaf.seed = 77;
  cfg.partition.overlap = overlap;
  cfg.partition.seed = 78;
  return workload::Testbed(cfg);
}

// Bulky pattern first in textual order; the optimizer should flip it.
const char* kTwoPattern =
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
    "SELECT ?x ?z ?n WHERE { ?x foaf:knows ?z . ?z foaf:nick ?n . }";

const char* kThreePattern =
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
    "PREFIX ns: <http://example.org/ns#>\n"
    "SELECT ?x ?y ?z WHERE { ?x foaf:knows ?z . ?x ns:knowsNothingAbout ?y ."
    " ?y foaf:knows ?z . }";

const char* kFourPattern =
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
    "PREFIX ns: <http://example.org/ns#>\n"
    "SELECT ?x ?y ?z WHERE { ?x foaf:name ?name . ?x foaf:knows ?z . "
    "?x ns:knowsNothingAbout ?y . ?y foaf:knows ?z . }";

void run_conjunction(benchmark::State& state, const char* query,
                     bool freq_order, bool overlap_aware) {
  const auto persons = static_cast<std::size_t>(state.range(0));
  const double overlap = static_cast<double>(state.range(1)) / 100.0;
  workload::Testbed bed = make_bed(persons, overlap);
  benchutil::maybe_audit(bed, "conjunction/setup");
  dqp::ExecutionPolicy policy;
  policy.frequency_join_order = freq_order;
  policy.overlap_aware_sites = overlap_aware;
  dqp::DistributedQueryProcessor proc(bed.overlay(), policy);
  const char* shape = query == kTwoPattern ? "2" : query == kThreePattern
                                                       ? "3"
                                                       : "4";
  std::string name = std::string("patterns=") + shape + "/" +
                     (freq_order ? "freq-order" : "naive") +
                     (overlap_aware ? "+overlap" : "") +
                     "/persons=" + std::to_string(persons) +
                     "/overlap_pct=" + std::to_string(state.range(1));
  for (auto _ : state) {
    dqp::ExecutionReport rep;
    benchmark::DoNotOptimize(
        proc.execute(query, bed.storage_addrs().front(), &rep));
    benchutil::record_json(state, name, rep);
  }
}

#define CONJ_BENCH(name, query, freq, aware)                       \
  void name(benchmark::State& state) {                             \
    run_conjunction(state, query, freq, aware);                    \
  }                                                                \
  BENCHMARK(name)                                                  \
      ->Args({200, 20})                                            \
      ->Args({400, 20})                                            \
      ->Args({400, 0})                                             \
      ->Args({400, 40})                                            \
      ->Iterations(1)                                              \
      ->Unit(benchmark::kMillisecond)

CONJ_BENCH(BM_Conjunction2_Naive, kTwoPattern, false, false);
CONJ_BENCH(BM_Conjunction2_FreqOrder, kTwoPattern, true, false);
CONJ_BENCH(BM_Conjunction2_FreqOrderOverlap, kTwoPattern, true, true);
CONJ_BENCH(BM_Conjunction3_Naive, kThreePattern, false, false);
CONJ_BENCH(BM_Conjunction3_FreqOrderOverlap, kThreePattern, true, true);
CONJ_BENCH(BM_Conjunction4_Naive, kFourPattern, false, false);
CONJ_BENCH(BM_Conjunction4_FreqOrderOverlap, kFourPattern, true, true);

#undef CONJ_BENCH

void BM_Conjunction_BasicIndexNodeJoin(benchmark::State& state) {
  // The paper's basic conjunction plan: per-pattern scatter/gather at each
  // index node, solutions forwarded between index nodes (N4 -> N15 -> N1).
  workload::Testbed bed = make_bed(static_cast<std::size_t>(state.range(0)),
                                   0.2);
  benchutil::maybe_audit(bed, "conjunction/order-setup");
  dqp::ExecutionPolicy policy;
  policy.primitive = optimizer::PrimitiveStrategy::kBasic;
  policy.frequency_join_order = false;
  policy.overlap_aware_sites = false;
  dqp::DistributedQueryProcessor proc(bed.overlay(), policy);
  for (auto _ : state) {
    dqp::ExecutionReport rep;
    benchmark::DoNotOptimize(
        proc.execute(kTwoPattern, bed.storage_addrs().front(), &rep));
    benchutil::record_json(state,
                           "basic-index-node-join/persons=" +
                               std::to_string(state.range(0)),
                           rep);
  }
}

BENCHMARK(BM_Conjunction_BasicIndexNodeJoin)
    ->Arg(200)
    ->Arg(400)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
