// E12 — adaptive strategy selection vs fixed strategies (the paper's
// Sect. V future work: query plans under a mixture of traffic and
// response-time objectives).
//
// Expected shape: on a workload mixing short skewed provider lists (chain
// territory) with long balanced ones (scatter/gather territory), the
// adaptive chooser tracks the better fixed strategy on both objectives,
// beating each fixed policy on the metric it neglects.
#include <cmath>

#include "bench_util.hpp"
#include "workload/vocab.hpp"

namespace {

using namespace ahsw;
using optimizer::PrimitiveStrategy;

/// Workload with heterogeneous provider shapes: half the queried targets
/// have 3 skewed providers, half have 12 balanced ones.
struct Setup {
  workload::Testbed bed;
  std::vector<std::string> queries;

  Setup()
      : bed([] {
          workload::TestbedConfig cfg;
          cfg.index_nodes = 8;
          cfg.storage_nodes = 13;  // 12 providers + data-free initiator
          cfg.foaf.persons = 0;
          return cfg;
        }()) {
    rdf::Term knows = rdf::Term::iri(std::string(workload::foaf::kKnows));
    auto person = [](const std::string& n) {
      return rdf::Term::iri("http://example.org/people/" + n);
    };
    // Targets t0..t3: three providers with sizes 2/4/40 (skewed, short).
    for (int t = 0; t < 4; ++t) {
      rdf::Term target = person("skewed" + std::to_string(t));
      int sizes[3] = {2, 4, 40};
      for (int pi = 0; pi < 3; ++pi) {
        std::vector<rdf::Triple> triples;
        for (int j = 0; j < sizes[pi]; ++j) {
          triples.push_back({person("s" + std::to_string(t) + "_" +
                                    std::to_string(pi) + "_" +
                                    std::to_string(j)),
                             knows, target});
        }
        bed.overlay().share_triples(
            bed.storage_addrs()[static_cast<std::size_t>(pi)], triples, 0);
      }
      queries.push_back(
          "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
          "SELECT ?x WHERE { ?x foaf:knows "
          "<http://example.org/people/skewed" +
          std::to_string(t) + "> . }");
    }
    // Targets u0..u3: twelve balanced providers with 8 rows each.
    for (int t = 0; t < 4; ++t) {
      rdf::Term target = person("balanced" + std::to_string(t));
      for (int pi = 0; pi < 12; ++pi) {
        std::vector<rdf::Triple> triples;
        for (int j = 0; j < 8; ++j) {
          triples.push_back({person("b" + std::to_string(t) + "_" +
                                    std::to_string(pi) + "_" +
                                    std::to_string(j)),
                             knows, target});
        }
        bed.overlay().share_triples(
            bed.storage_addrs()[static_cast<std::size_t>(pi)], triples, 0);
      }
      queries.push_back(
          "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
          "SELECT ?x WHERE { ?x foaf:knows "
          "<http://example.org/people/balanced" +
          std::to_string(t) + "> . }");
    }
    bed.network().reset_stats();
  }
};

void run_policy(benchmark::State& state, const char* name,
                const dqp::ExecutionPolicy& policy) {
  Setup setup;
  benchutil::maybe_audit(setup.bed, "adaptive/setup");
  dqp::DistributedQueryProcessor proc(setup.bed.overlay(), policy);
  for (auto _ : state) {
    std::vector<dqp::ExecutionReport> reports;
    for (const std::string& q : setup.queries) {
      dqp::ExecutionReport rep;
      benchmark::DoNotOptimize(
          proc.execute(q, setup.bed.storage_addrs().back(), &rep));
      reports.push_back(rep);
    }
    benchutil::record_mean_json(state, name, reports);
  }
}

void BM_Adaptive_FixedBasic(benchmark::State& state) {
  dqp::ExecutionPolicy policy;
  policy.primitive = PrimitiveStrategy::kBasic;
  run_policy(state, "fixed-basic", policy);
}

void BM_Adaptive_FixedFrequencyChain(benchmark::State& state) {
  dqp::ExecutionPolicy policy;
  policy.primitive = PrimitiveStrategy::kFrequencyChain;
  run_policy(state, "fixed-frequency-chain", policy);
}

void BM_Adaptive_TrafficObjective(benchmark::State& state) {
  dqp::ExecutionPolicy policy;
  policy.adaptive = true;
  policy.objectives = {1.0, 0.0};
  run_policy(state, "adaptive/traffic", policy);
}

void BM_Adaptive_LatencyObjective(benchmark::State& state) {
  dqp::ExecutionPolicy policy;
  policy.adaptive = true;
  policy.objectives = {0.0, 1.0};
  run_policy(state, "adaptive/latency", policy);
}

void BM_Adaptive_MixedObjective(benchmark::State& state) {
  dqp::ExecutionPolicy policy;
  policy.adaptive = true;
  // 1 ms of response time valued as 100 bytes of traffic.
  policy.objectives = {1.0, 100.0};
  run_policy(state, "adaptive/mixed", policy);
}

BENCHMARK(BM_Adaptive_FixedBasic)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Adaptive_FixedFrequencyChain)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Adaptive_TrafficObjective)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Adaptive_LatencyObjective)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Adaptive_MixedObjective)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
