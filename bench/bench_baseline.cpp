// E11 — head-to-head against RDFPeers (Cai & Frank), the system the paper
// differentiates itself from (Sect. I/II). Identical data and queries on
// both designs, built over the same Chord/network substrates.
//
// Expected shape (the paper's argument): RDFPeers pays triple shipment at
// publish time and loses provider autonomy (data leaves the device); the
// hybrid design publishes only small index entries and keeps data at its
// provider, at the price of contacting providers at query time. RDFPeers'
// subject-routed lookup reaches one node and is cheaper per query; the
// hybrid design's per-query premium is the rent for autonomy.
#include <numeric>

#include "bench_util.hpp"
#include "rdfpeers/repository.hpp"
#include "workload/vocab.hpp"

namespace {

using namespace ahsw;

std::vector<rdf::Triple> dataset(std::size_t persons) {
  workload::FoafConfig cfg;
  cfg.persons = persons;
  cfg.seed = 1001;
  return workload::generate_foaf(cfg);
}

void BM_Baseline_PublishCost(benchmark::State& state) {
  const auto persons = static_cast<std::size_t>(state.range(0));
  std::vector<rdf::Triple> data = dataset(persons);

  for (auto _ : state) {
    // Hybrid overlay: 16 index nodes, 8 providers.
    net::Network net_ours;
    overlay::HybridOverlay ours(net_ours);
    for (int i = 0; i < 16; ++i) ours.add_index_node();
    ours.ring().fix_all_fingers_oracle();
    std::vector<net::NodeAddress> providers;
    for (int i = 0; i < 8; ++i) providers.push_back(ours.add_storage_node());
    workload::PartitionConfig part;
    part.nodes = providers.size();
    auto shares = workload::partition(data, part);
    net_ours.reset_stats();
    for (std::size_t i = 0; i < providers.size(); ++i) {
      ours.share_triples(providers[i], shares[i], 0);
    }

    // RDFPeers: 24 peers (16 + 8: everyone stores), publishers = first 8.
    net::Network net_peers;
    rdfpeers::Repository theirs(net_peers);
    std::vector<chord::Key> peers;
    for (int i = 0; i < 24; ++i) peers.push_back(theirs.add_peer());
    theirs.ring().fix_all_fingers_oracle();
    net_peers.reset_stats();
    for (std::size_t i = 0; i < shares.size(); ++i) {
      theirs.store_triples(peers[i], shares[i], 0);
    }

    benchutil::record_raw_json("publish/ours/persons=" +
                                   std::to_string(persons),
                               net_ours.stats());
    benchutil::record_raw_json("publish/rdfpeers/persons=" +
                                   std::to_string(persons),
                               net_peers.stats());
    state.counters["ours_publish_bytes"] =
        static_cast<double>(net_ours.stats().bytes);
    state.counters["rdfpeers_publish_bytes"] =
        static_cast<double>(net_peers.stats().bytes);
    state.counters["ours_publish_msgs"] =
        static_cast<double>(net_ours.stats().messages);
    state.counters["rdfpeers_publish_msgs"] =
        static_cast<double>(net_peers.stats().messages);

    // Provider autonomy: fraction of shared triples still held by their
    // own provider. Ours: all of them. RDFPeers: whatever hashed home.
    std::size_t total = 0, at_home = 0;
    for (std::size_t i = 0; i < shares.size(); ++i) {
      total += shares[i].size();
      const rdf::TripleStore& home = theirs.peers().at(peers[i]).store;
      for (const rdf::Triple& t : shares[i]) {
        if (home.contains(t)) ++at_home;
      }
    }
    state.counters["rdfpeers_autonomy"] =
        static_cast<double>(at_home) / static_cast<double>(total ? total : 1);
    state.counters["ours_autonomy"] = 1.0;

    // Storage imbalance across infrastructure nodes (max/mean triples).
    std::vector<std::size_t> loads = theirs.storage_loads();
    double mean = std::accumulate(loads.begin(), loads.end(), 0.0) /
                  static_cast<double>(loads.size());
    double mx = static_cast<double>(
        *std::max_element(loads.begin(), loads.end()));
    state.counters["rdfpeers_load_max_over_mean"] = mean > 0 ? mx / mean : 0;
  }
}

BENCHMARK(BM_Baseline_PublishCost)
    ->Arg(100)
    ->Arg(400)
    ->Arg(1600)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_Baseline_PatternQueryCost(benchmark::State& state) {
  const auto persons = static_cast<std::size_t>(state.range(0));
  std::vector<rdf::Triple> data = dataset(persons);

  // Build both systems once per run.
  net::Network net_ours;
  overlay::HybridOverlay ours(net_ours);
  for (int i = 0; i < 16; ++i) ours.add_index_node();
  ours.ring().fix_all_fingers_oracle();
  std::vector<net::NodeAddress> providers;
  for (int i = 0; i < 8; ++i) providers.push_back(ours.add_storage_node());
  workload::PartitionConfig part;
  part.nodes = providers.size();
  auto shares = workload::partition(data, part);
  for (std::size_t i = 0; i < providers.size(); ++i) {
    ours.share_triples(providers[i], shares[i], 0);
  }

  net::Network net_peers;
  rdfpeers::Repository theirs(net_peers);
  std::vector<chord::Key> peers;
  for (int i = 0; i < 24; ++i) peers.push_back(theirs.add_peer());
  theirs.ring().fix_all_fingers_oracle();
  for (std::size_t i = 0; i < shares.size(); ++i) {
    theirs.store_triples(peers[i], shares[i], 0);
  }

  dqp::DistributedQueryProcessor proc(ours);
  rdf::Term knows = rdf::Term::iri(std::string(workload::foaf::kKnows));
  rdf::Term target = rdf::Term::iri("http://example.org/people/p0");

  for (auto _ : state) {
    net_ours.reset_stats();
    dqp::ExecutionReport rep;
    sparql::QueryResult r = proc.execute(
        "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
        "SELECT ?x WHERE { ?x foaf:knows <http://example.org/people/p0> . }",
        providers.front(), &rep);
    benchmark::DoNotOptimize(r);

    net_peers.reset_stats();
    rdfpeers::Repository::Resolution res = theirs.resolve_pattern(
        peers.front(),
        rdf::TriplePattern{rdf::Variable{"x"}, knows, target}, 0);
    benchmark::DoNotOptimize(res);

    benchutil::record_raw_json("pattern/ours/persons=" +
                                   std::to_string(persons),
                               rep.traffic, rep.response_time);
    benchutil::record_raw_json("pattern/rdfpeers/persons=" +
                                   std::to_string(persons),
                               net_peers.stats(), res.completed_at);
    state.counters["ours_query_bytes"] =
        static_cast<double>(rep.traffic.bytes);
    state.counters["rdfpeers_query_bytes"] =
        static_cast<double>(net_peers.stats().bytes);
    state.counters["ours_resp_ms"] = rep.response_time;
    state.counters["rdfpeers_resp_ms"] = res.completed_at;
    state.counters["rows_agree"] =
        r.solutions.size() == res.solutions.size() ? 1.0 : 0.0;
  }
}

BENCHMARK(BM_Baseline_PatternQueryCost)
    ->Arg(400)
    ->Arg(1600)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_Baseline_RangeQueryCost(benchmark::State& state) {
  // Range query over numeric objects: RDFPeers' locality-hash segment walk
  // vs the hybrid design's P-key providers + pushed filter.
  const double width = static_cast<double>(state.range(0));
  workload::SensorConfig sensors;
  sensors.sensors = 20;
  sensors.observations_per_sensor = 20;
  std::vector<rdf::Triple> data = workload::generate_sensors(sensors);

  net::Network net_ours;
  overlay::HybridOverlay ours(net_ours);
  for (int i = 0; i < 16; ++i) ours.add_index_node();
  ours.ring().fix_all_fingers_oracle();
  std::vector<net::NodeAddress> providers;
  for (int i = 0; i < 8; ++i) providers.push_back(ours.add_storage_node());
  workload::PartitionConfig part;
  part.nodes = providers.size();
  auto shares = workload::partition(data, part);
  for (std::size_t i = 0; i < providers.size(); ++i) {
    ours.share_triples(providers[i], shares[i], 0);
  }

  // Locality range tuned to the queried attribute's domain (sensor values
  // 0..100); other numeric attributes (timestamps) clamp to the top key,
  // which is the load-skew price RDFPeers pays for a global value mapping.
  rdfpeers::RepositoryConfig peers_cfg;
  peers_cfg.numeric_min = 0.0;
  peers_cfg.numeric_max = 100.0;
  net::Network net_peers;
  rdfpeers::Repository theirs(net_peers, peers_cfg);
  std::vector<chord::Key> peers;
  for (int i = 0; i < 24; ++i) peers.push_back(theirs.add_peer());
  theirs.ring().fix_all_fingers_oracle();
  for (std::size_t i = 0; i < shares.size(); ++i) {
    theirs.store_triples(peers[i], shares[i], 0);
  }

  dqp::DistributedQueryProcessor proc(ours);
  rdf::Term value = rdf::Term::iri(std::string(workload::sensor::kValue));
  const double lo = 50.0 - width / 2, hi = 50.0 + width / 2;

  for (auto _ : state) {
    net_ours.reset_stats();
    dqp::ExecutionReport rep;
    sparql::QueryResult r = proc.execute(
        "PREFIX s: <http://example.org/sensors#>\n"
        "SELECT ?x ?v WHERE { ?x s:value ?v . FILTER(?v >= " +
            std::to_string(lo) + " && ?v <= " + std::to_string(hi) + ") }",
        providers.front(), &rep);
    benchmark::DoNotOptimize(r);

    net_peers.reset_stats();
    rdfpeers::Repository::Resolution res =
        theirs.resolve_range(peers.front(), value, lo, hi, 0);
    benchmark::DoNotOptimize(res);

    benchutil::record_raw_json("range/ours/width=" + std::to_string(state.range(0)),
                               net_ours.stats(), rep.response_time);
    benchutil::record_raw_json("range/rdfpeers/width=" +
                                   std::to_string(state.range(0)),
                               net_peers.stats(), res.completed_at);
    state.counters["ours_bytes"] = static_cast<double>(net_ours.stats().bytes);
    state.counters["rdfpeers_bytes"] =
        static_cast<double>(net_peers.stats().bytes);
    state.counters["rdfpeers_peers_visited"] =
        static_cast<double>(res.hops);
    state.counters["rows_agree"] =
        r.solutions.size() == res.solutions.size() ? 1.0 : 0.0;
  }
}

BENCHMARK(BM_Baseline_RangeQueryCost)
    ->Arg(10)
    ->Arg(40)
    ->Arg(100)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
