// E13 — ablation of the six-key index scheme (Sect. III-B), the paper's
// concrete extension over RDFPeers' three keys: what do the SP/PO/SO rows
// buy, and what do they cost?
//
// Expected shape: the three-key variant halves index size and publish
// traffic, but two-attribute patterns (the most common SPARQL shape: (?s,
// p, o) and (s, p, ?o)) must contact every provider of the single
// attribute, multiplying query traffic — increasingly so as the data
// grows. The six-key scheme trades cheap, one-off publish cost for
// precision on every query.
#include "bench_util.hpp"
#include "workload/vocab.hpp"

namespace {

using namespace ahsw;

workload::Testbed make_bed(bool pair_keys, std::size_t persons) {
  workload::TestbedConfig cfg;
  cfg.index_nodes = 16;
  cfg.storage_nodes = 8;
  cfg.overlay.pair_keys = pair_keys;
  cfg.foaf.persons = persons;
  cfg.foaf.seed = 2024;
  cfg.partition.seed = 2025;
  return workload::Testbed(cfg);
}

void BM_IndexAblation_PublishCost(benchmark::State& state) {
  const bool pair_keys = state.range(0) != 0;
  const auto persons = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    // Rebuild and measure the publish phase explicitly (the Testbed resets
    // stats after setup, so re-share a copy of the data).
    workload::TestbedConfig cfg;
    cfg.index_nodes = 16;
    cfg.storage_nodes = 8;
    cfg.overlay.pair_keys = pair_keys;
    cfg.foaf.persons = 0;
    workload::Testbed bed(cfg);
    workload::FoafConfig foaf;
    foaf.persons = persons;
    foaf.seed = 2024;
    workload::PartitionConfig part;
    part.nodes = bed.storage_addrs().size();
    auto shares = workload::partition(workload::generate_foaf(foaf), part);
    bed.network().reset_stats();
    for (std::size_t i = 0; i < shares.size(); ++i) {
      bed.overlay().share_triples(bed.storage_addrs()[i], shares[i], 0);
    }
    std::size_t entries = 0;
    for (const auto& [id, ix] : bed.overlay().index_nodes()) {
      entries += ix.table.entry_count();
    }
    state.counters["publish_msgs"] =
        static_cast<double>(bed.network().stats().messages);
    state.counters["index_entries"] = static_cast<double>(entries);
    benchutil::record_raw_json(std::string("publish/") +
                                   (pair_keys ? "six-keys" : "three-keys") +
                                   "/persons=" + std::to_string(persons),
                               bed.network().stats());
  }
}

BENCHMARK(BM_IndexAblation_PublishCost)
    ->Args({1, 400})   // six keys
    ->Args({0, 400})   // three keys
    ->Args({1, 1600})
    ->Args({0, 1600})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_IndexAblation_PairPatternQuery(benchmark::State& state) {
  const bool pair_keys = state.range(0) != 0;
  const auto persons = static_cast<std::size_t>(state.range(1));
  workload::Testbed bed = make_bed(pair_keys, persons);
  benchutil::maybe_audit(bed, "index-ablation/po-setup");
  dqp::DistributedQueryProcessor proc(bed.overlay());
  // (?x, knowsNothingAbout, p0): a PO-shaped pattern whose object (the
  // most popular person) is shared with the far bulkier foaf:knows edges.
  // The exact PO row names the few knowsNothingAbout providers; the O-row
  // fallback names everyone holding *any* triple about p0.
  std::string q =
      "PREFIX ns: <http://example.org/ns#>\n"
      "SELECT ?x WHERE { ?x ns:knowsNothingAbout "
      "<http://example.org/people/p0> . }";
  for (auto _ : state) {
    dqp::ExecutionReport rep;
    benchmark::DoNotOptimize(
        proc.execute(q, bed.storage_addrs().front(), &rep));
    benchutil::record_json(state,
                           std::string("po-pattern/") +
                               (pair_keys ? "six-keys" : "three-keys") +
                               "/persons=" + std::to_string(persons),
                           rep);
  }
}

BENCHMARK(BM_IndexAblation_PairPatternQuery)
    ->Args({1, 400})
    ->Args({0, 400})
    ->Args({1, 1600})
    ->Args({0, 1600})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_IndexAblation_SpPatternQuery(benchmark::State& state) {
  const bool pair_keys = state.range(0) != 0;
  workload::Testbed bed = make_bed(pair_keys, 800);
  benchutil::maybe_audit(bed, "index-ablation/sp-setup");
  dqp::DistributedQueryProcessor proc(bed.overlay());
  // (p3, knows, ?o): an SP-shaped pattern; the three-key mode falls back
  // to the S row (all of p3's triples — a mild over-approximation).
  std::string q =
      "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
      "SELECT ?o WHERE { <http://example.org/people/p3> foaf:knows ?o . }";
  for (auto _ : state) {
    dqp::ExecutionReport rep;
    benchmark::DoNotOptimize(
        proc.execute(q, bed.storage_addrs().front(), &rep));
    benchutil::record_json(state,
                           std::string("sp-pattern/") +
                               (pair_keys ? "six-keys" : "three-keys"),
                           rep);
  }
}

BENCHMARK(BM_IndexAblation_SpPatternQuery)
    ->Arg(1)
    ->Arg(0)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
