// E6 — UNION site selection (Sect. IV-F): ending both branch chains at a
// shared provider makes the union free; without a shared provider the
// operands must converge by shipping.
//
// Expected shape: overlap-aware execution saves bytes exactly when the
// branch provider sets overlap; with disjoint providers the two policies
// coincide (both fall back to move-small).
#include "bench_util.hpp"
#include "workload/vocab.hpp"

namespace {

using namespace ahsw;

/// Two branches (nick / mbox) over `per_branch` facts each. With
/// shared == 1 node 4 provides BOTH branches, asymmetrically: it is the
/// *largest* provider of branch 1 (so branch 1's frequency chain naturally
/// ends there) but a *small* provider of branch 2 (whose natural chain end
/// is elsewhere) — the configuration where forcing branch 2's chain to end
/// at the shared node (Sect. IV-F) actually saves a shipment.
workload::Testbed make_bed(int per_branch, int shared) {
  workload::TestbedConfig cfg;
  cfg.index_nodes = 8;
  cfg.storage_nodes = 6;
  cfg.foaf.persons = 0;
  workload::Testbed bed(cfg);
  rdf::Term nick = rdf::Term::iri(std::string(workload::foaf::kNick));
  rdf::Term mbox = rdf::Term::iri(std::string(workload::foaf::kMbox));
  auto person = [](int i) {
    return rdf::Term::iri("http://example.org/people/p" + std::to_string(i));
  };
  std::vector<std::vector<rdf::Triple>> shares(bed.storage_addrs().size());
  for (int i = 0; i < per_branch; ++i) {
    // Branch 1: 20% on node 0, 80% on node 4 (the shared heavyweight).
    std::size_t node1 = i % 5 == 0 ? 0u : 4u;
    // Branch 2: 80% on node 2, 20% on node 4.
    std::size_t node2 = i % 5 == 0 ? 4u : 2u;
    if (shared == 0) {
      // Disjoint provider sets: branch 1 on {0, 1}, branch 2 on {2, 3}.
      node1 = static_cast<std::size_t>(i % 5 == 0 ? 0 : 1);
      node2 = static_cast<std::size_t>(i % 5 == 0 ? 3 : 2);
    }
    shares[node1].push_back(
        {person(i), nick, rdf::Term::literal("n" + std::to_string(i))});
    shares[node2].push_back(
        {person(per_branch + i), mbox,
         rdf::Term::iri("mailto:m" + std::to_string(i) + "@example.org")});
  }
  for (std::size_t i = 0; i < shares.size(); ++i) {
    bed.overlay().share_triples(bed.storage_addrs()[i], shares[i], 0);
  }
  bed.network().reset_stats();
  return bed;
}

const char* kQuery =
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
    "SELECT ?x WHERE { { ?x foaf:nick ?n . } UNION { ?x foaf:mbox ?m . } }";

void run_union(benchmark::State& state, bool overlap_aware) {
  const int per_branch = static_cast<int>(state.range(0));
  const int shared = static_cast<int>(state.range(1));
  workload::Testbed bed = make_bed(per_branch, shared);
  benchutil::maybe_audit(bed, "union/setup");
  dqp::ExecutionPolicy policy;
  policy.overlap_aware_sites = overlap_aware;
  dqp::DistributedQueryProcessor proc(bed.overlay(), policy);
  std::string name = std::string(overlap_aware ? "overlap-aware" : "naive") +
                     "/per_branch=" + std::to_string(per_branch) +
                     "/shared=" + std::to_string(shared);
  for (auto _ : state) {
    dqp::ExecutionReport rep;
    benchmark::DoNotOptimize(
        proc.execute(kQuery, bed.storage_addrs().front(), &rep));
    benchutil::record_json(state, name, rep);
  }
}

void BM_Union_Naive(benchmark::State& state) { run_union(state, false); }
void BM_Union_SharedSite(benchmark::State& state) { run_union(state, true); }

// Args {facts per branch, shared provider count 0..2}.
// Args {facts per branch, shared? 0/1}.
void configure(benchmark::internal::Benchmark* b) {
  b->Args({100, 0})
      ->Args({100, 1})
      ->Args({400, 0})
      ->Args({400, 1})
      ->Args({1600, 1})
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Union_Naive)->Apply(configure);
BENCHMARK(BM_Union_SharedSite)->Apply(configure);

}  // namespace
