// E1 — Chord lookup scaling (the property the architecture's level-1 index
// inherits from Stoica et al.): average lookup hops grow as O(log N) in the
// number of index nodes.
//
// Series reported: avg_hops, p_max_hops, routing messages per lookup, and
// simulated lookup latency, for rings of 2^4 .. 2^12 index nodes.
#include "bench_util.hpp"
#include "chord/ring.hpp"
#include "common/rng.hpp"

namespace {

using namespace ahsw;

void BM_ChordLookupHops(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  net::Network network;
  chord::Ring ring(network, chord::RingConfig{32, 4});
  common::Rng rng(1234);

  std::vector<chord::Key> ids;
  for (std::size_t i = 0; i < n; ++i) {
    chord::Key id = ring.truncate(rng.next());
    while (ring.contains(id)) id = ring.truncate(rng.next());
    if (i == 0) {
      ring.create(network.allocate_address(), id);
    } else {
      ring.join(network.allocate_address(), id, ids.front(), 0);
    }
    ids.push_back(id);
  }
  ring.fix_all_fingers_oracle();

  const int lookups = 500;
  for (auto _ : state) {
    network.reset_stats();
    double total_hops = 0;
    int max_hops = 0;
    double total_latency = 0;
    for (int i = 0; i < lookups; ++i) {
      chord::Key from = ids[rng.below(ids.size())];
      chord::Ring::LookupResult r =
          ring.find_successor(from, ring.truncate(rng.next()), 0);
      benchmark::DoNotOptimize(r.owner);
      total_hops += r.hops;
      max_hops = std::max(max_hops, r.hops);
      total_latency += r.completed_at;
    }
    state.counters["avg_hops"] = total_hops / lookups;
    state.counters["max_hops"] = static_cast<double>(max_hops);
    state.counters["msgs_per_lookup"] =
        static_cast<double>(network.stats().messages) / lookups;
    state.counters["avg_latency_ms"] = total_latency / lookups;
    benchutil::record_raw_json("lookup/nodes=" + std::to_string(n),
                               network.stats(), total_latency / lookups,
                               static_cast<std::uint64_t>(lookups));
  }
}

BENCHMARK(BM_ChordLookupHops)
    ->RangeMultiplier(2)
    ->Range(16, 4096)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_ChordJoinCost(benchmark::State& state) {
  // Join traffic as the ring grows: messages charged for the lookup +
  // finger construction of one joining node.
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    net::Network network;
    chord::Ring ring(network, chord::RingConfig{32, 4});
    common::Rng rng(99);
    chord::Key first = ring.truncate(rng.next());
    ring.create(network.allocate_address(), first);
    for (std::size_t i = 1; i < n; ++i) {
      chord::Key id = ring.truncate(rng.next());
      while (ring.contains(id)) id = ring.truncate(rng.next());
      ring.join(network.allocate_address(), id, first, 0);
    }
    ring.fix_all_fingers_oracle();
    network.reset_stats();
    chord::Key id = ring.truncate(rng.next());
    while (ring.contains(id)) id = ring.truncate(rng.next());
    chord::Ring::JoinResult jr = ring.join(network.allocate_address(), id,
                                           first, 0);
    state.counters["join_msgs"] =
        static_cast<double>(network.stats().messages);
    state.counters["join_lookup_hops"] = static_cast<double>(jr.lookup_hops);
    benchutil::record_raw_json("join/nodes=" + std::to_string(n),
                               network.stats());
  }
}

BENCHMARK(BM_ChordJoinCost)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
