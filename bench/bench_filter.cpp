// E7 — filter pushing (Sect. IV-G): FILTER applied at the providers (pushed
// into the BGP patterns) vs at the collecting node, across filter
// selectivities.
//
// Expected shape: pushed data traffic is proportional to the filter's
// selectivity; unpushed traffic is flat (every candidate row ships). The
// two converge as selectivity approaches 1.
#include "bench_util.hpp"
#include "workload/vocab.hpp"

namespace {

using namespace ahsw;

workload::Testbed make_bed() {
  workload::TestbedConfig cfg;
  cfg.index_nodes = 8;
  cfg.storage_nodes = 8;
  cfg.foaf.persons = 0;
  workload::Testbed bed(cfg);
  // 800 people with a uniform numeric age 0..99 spread over the nodes.
  rdf::Term age = rdf::Term::iri(std::string(workload::foaf::kAge));
  rdf::Term knows = rdf::Term::iri(std::string(workload::foaf::kKnows));
  std::vector<std::vector<rdf::Triple>> shares(bed.storage_addrs().size());
  for (int i = 0; i < 800; ++i) {
    rdf::Term person =
        rdf::Term::iri("http://example.org/people/p" + std::to_string(i));
    shares[static_cast<std::size_t>(i) % shares.size()].push_back(
        {person, age, rdf::Term::integer(i % 100)});
    shares[static_cast<std::size_t>(i + 3) % shares.size()].push_back(
        {person, knows,
         rdf::Term::iri("http://example.org/people/p" +
                        std::to_string((i * 7) % 800))});
  }
  for (std::size_t i = 0; i < shares.size(); ++i) {
    bed.overlay().share_triples(bed.storage_addrs()[i], shares[i], 0);
  }
  bed.network().reset_stats();
  return bed;
}

/// Query selecting the fraction of people with age above a threshold;
/// threshold 100 - selectivity%.
std::string query_with_selectivity(int selectivity_pct) {
  return "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
         "SELECT ?x ?y WHERE { ?x foaf:age ?a . ?x foaf:knows ?y . "
         "FILTER(?a >= " +
         std::to_string(100 - selectivity_pct) + ") }";
}

void run_filter(benchmark::State& state, bool push) {
  const int selectivity = static_cast<int>(state.range(0));
  workload::Testbed bed = make_bed();
  benchutil::maybe_audit(bed, "filter/setup");
  dqp::ExecutionPolicy policy;
  policy.push_filters = push;
  dqp::DistributedQueryProcessor proc(bed.overlay(), policy);
  std::string query = query_with_selectivity(selectivity);
  std::string name = std::string(push ? "pushed" : "at-collector") +
                     "/selectivity=" + std::to_string(selectivity);
  for (auto _ : state) {
    dqp::ExecutionReport rep;
    sparql::QueryResult r =
        proc.execute(query, bed.storage_addrs().front(), &rep);
    benchmark::DoNotOptimize(r);
    benchutil::record_json(state, name, rep);
    state.counters["rows"] = static_cast<double>(r.solutions.size());
  }
}

void BM_Filter_AtCollector(benchmark::State& state) {
  run_filter(state, false);
}
void BM_Filter_Pushed(benchmark::State& state) { run_filter(state, true); }

void configure(benchmark::internal::Benchmark* b) {
  for (int sel : {1, 5, 10, 25, 50, 100}) b->Arg(sel);
  b->Iterations(1)->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Filter_AtCollector)->Apply(configure);
BENCHMARK(BM_Filter_Pushed)->Apply(configure);

void BM_Filter_RegexPushdown(benchmark::State& state) {
  // The paper's Fig. 9 form: regex on names. Surname pool of 20 means the
  // "Smith" filter keeps ~1/20 of rows.
  workload::TestbedConfig cfg;
  cfg.index_nodes = 8;
  cfg.storage_nodes = 8;
  cfg.foaf.persons = 600;
  workload::Testbed bed(cfg);
  benchutil::maybe_audit(bed, "filter/regex-setup");
  dqp::ExecutionPolicy policy;
  policy.push_filters = state.range(0) != 0;
  dqp::DistributedQueryProcessor proc(bed.overlay(), policy);
  const char* query =
      "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
      "PREFIX ns: <http://example.org/ns#>\n"
      "SELECT ?x ?y ?z WHERE { ?x foaf:name ?name ; "
      "ns:knowsNothingAbout ?y . FILTER regex(?name, \"Smith\") "
      "OPTIONAL { ?y foaf:knows ?z . } }";
  for (auto _ : state) {
    dqp::ExecutionReport rep;
    benchmark::DoNotOptimize(
        proc.execute(query, bed.storage_addrs().front(), &rep));
    benchutil::record_json(
        state,
        std::string("regex/") + (policy.push_filters ? "pushed"
                                                     : "at-collector"),
        rep);
  }
}

BENCHMARK(BM_Filter_RegexPushdown)
    ->Arg(0)   // at collector
    ->Arg(1)   // pushed
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
