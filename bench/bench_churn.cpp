// E8 — churn resilience (Sect. III-C/III-D): query completeness and repair
// traffic under storage- and index-node failures, with and without
// location-table replication.
//
// Expected shape: storage failures only remove the dead nodes' own data
// (answers stay correct w.r.t. live data, at a timeout cost that lazy
// repair eliminates after the first hit). Index failures lose location rows
// unless replication >= 2 masks them; republication restores service at a
// bounded index-traffic cost.
#include "bench_util.hpp"
#include "fault/harness.hpp"
#include "workload/queries.hpp"

namespace {

using namespace ahsw;

workload::TestbedConfig base_config(int replication) {
  workload::TestbedConfig cfg;
  cfg.index_nodes = 16;
  cfg.storage_nodes = 16;
  cfg.overlay.replication_factor = replication;
  cfg.foaf.persons = 300;
  cfg.foaf.seed = 91;
  cfg.partition.seed = 92;
  return cfg;
}

/// Fraction of oracle rows the distributed answer recovers (1.0 = complete).
double completeness(workload::Testbed& bed,
                    dqp::DistributedQueryProcessor& proc,
                    const std::string& query,
                    const sparql::SolutionSet& reference) {
  sparql::QueryResult dist =
      proc.execute(query, bed.storage_addrs().front(), nullptr);
  sparql::SolutionSet got = sparql::deduplicated(dist.solutions);
  if (reference.empty()) return 1.0;
  std::size_t hit = 0;
  for (const sparql::Binding& b : reference.rows()) {
    for (const sparql::Binding& g : got.rows()) {
      if (b == g) {
        ++hit;
        break;
      }
    }
  }
  return static_cast<double>(hit) / static_cast<double>(reference.size());
}

const char* kQuery =
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
    "SELECT ?x ?o WHERE { ?x foaf:knows ?o . }";

void BM_Churn_StorageFailures(benchmark::State& state) {
  const int fail_pct = static_cast<int>(state.range(0));
  for (auto _ : state) {
    workload::Testbed bed(base_config(1));
    benchutil::maybe_audit(bed, "storage-fail/setup");
    dqp::DistributedQueryProcessor proc(bed.overlay());
    sparql::QueryResult before =
        proc.execute(kQuery, bed.storage_addrs().front(), nullptr);
    sparql::SolutionSet reference = sparql::deduplicated(before.solutions);

    std::size_t to_fail = bed.storage_addrs().size() *
                          static_cast<std::size_t>(fail_pct) / 100;
    for (std::size_t i = 0; i < to_fail; ++i) {
      bed.overlay().storage_node_fail(bed.storage_addrs()[i + 1]);
    }
    benchutil::maybe_audit(bed, "storage-fail/failed", /*churned=*/true);
    bed.network().reset_stats();

    dqp::ExecutionReport first_rep;
    (void)proc.execute(kQuery, bed.storage_addrs().front(), &first_rep);
    dqp::ExecutionReport second_rep;
    (void)proc.execute(kQuery, bed.storage_addrs().front(), &second_rep);

    // Recall against the pre-failure answer: lost exactly the dead data.
    benchutil::record_raw_json(
        "storage-fail/pct=" + std::to_string(fail_pct) + "/first",
        first_rep.traffic, first_rep.response_time);
    benchutil::record_raw_json(
        "storage-fail/pct=" + std::to_string(fail_pct) + "/post-repair",
        second_rep.traffic, second_rep.response_time);

    state.counters["recall_vs_prefail"] =
        completeness(bed, proc, kQuery, reference);
    state.counters["first_timeouts"] =
        static_cast<double>(first_rep.traffic.timeouts);
    state.counters["post_repair_timeouts"] =
        static_cast<double>(second_rep.traffic.timeouts);
    state.counters["first_resp_ms"] = first_rep.response_time;
    state.counters["post_repair_resp_ms"] = second_rep.response_time;
  }
}

BENCHMARK(BM_Churn_StorageFailures)
    ->Arg(0)
    ->Arg(10)
    ->Arg(20)
    ->Arg(40)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_Churn_IndexFailures(benchmark::State& state) {
  const int fail_count = static_cast<int>(state.range(0));
  const int replication = static_cast<int>(state.range(1));
  for (auto _ : state) {
    workload::TestbedConfig cfg = base_config(replication);
    workload::Testbed bed(cfg);
    benchutil::maybe_audit(bed, "index-fail/setup");
    dqp::DistributedQueryProcessor proc(bed.overlay());

    // Many primitive queries with distinct bound terms, so the probe set
    // touches many different index keys (a single query exercises only one
    // location-table row and would not see most failures).
    std::vector<std::string> probes;
    for (int i = 0; i < 25; ++i) {
      probes.push_back(
          "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
          "SELECT ?p ?o WHERE { <http://example.org/people/p" +
          std::to_string(i * 7) + "> ?p ?o . }");
    }
    std::vector<sparql::SolutionSet> references;
    for (const std::string& q : probes) {
      references.push_back(sparql::deduplicated(
          proc.execute(q, bed.storage_addrs().front(), nullptr).solutions));
    }

    // Fail nodes spread around the ring (adjacent-id failures would kill an
    // owner together with its replicas and measure correlated loss instead
    // of the replication factor).
    std::vector<chord::Key> all_ids;
    for (const auto& [id, ix] : bed.overlay().index_nodes()) {
      all_ids.push_back(id);
    }
    std::vector<chord::Key> victims;
    std::size_t stride = all_ids.size() / static_cast<std::size_t>(fail_count);
    for (int i = 0; i < fail_count; ++i) {
      victims.push_back(all_ids[static_cast<std::size_t>(i) * stride]);
    }
    for (chord::Key v : victims) bed.overlay().index_node_fail(v);
    bed.network().reset_stats();
    bed.overlay().repair(0);
    bed.overlay().ring().fix_all_fingers_oracle();
    benchutil::maybe_audit(bed, "index-fail/repaired", /*churned=*/true);
    auto repair_msgs = bed.network().stats().messages;
    benchutil::record_raw_json("index-fail/fail=" + std::to_string(fail_count) +
                                   "/repl=" + std::to_string(replication) +
                                   "/repair",
                               bed.network().stats());

    auto mean_recall = [&]() {
      double sum = 0;
      for (std::size_t i = 0; i < probes.size(); ++i) {
        sum += completeness(bed, proc, probes[i], references[i]);
      }
      return sum / static_cast<double>(probes.size());
    };

    state.counters["recall_after_repair"] = mean_recall();
    state.counters["repair_msgs"] = static_cast<double>(repair_msgs);

    // Without replication, republication is the recovery path.
    bed.network().reset_stats();
    bed.overlay().republish_all(0);
    benchutil::maybe_audit(bed, "index-fail/republished", /*churned=*/true);
    state.counters["republish_msgs"] =
        static_cast<double>(bed.network().stats().messages);
    benchutil::record_raw_json("index-fail/fail=" + std::to_string(fail_count) +
                                   "/repl=" + std::to_string(replication) +
                                   "/republish",
                               bed.network().stats());
    state.counters["recall_after_republish"] = mean_recall();
  }
}

BENCHMARK(BM_Churn_IndexFailures)
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({1, 2})
    ->Args({2, 2})
    ->Args({4, 2})
    ->Args({4, 3})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// E8b — availability vs churn rate (Sect. III-D): a concurrent query batch
// runs while a seeded fault schedule crashes, recovers and rejoins storage
// nodes mid-flight. Sweeps the churn rate with the retry/backoff +
// re-lookup policy off and on; emits the availability metrics (success
// rate, retries per query, repair-convergence time) into the BENCH JSON.
void BM_Churn_Availability(benchmark::State& state) {
  const auto fails_per_second = static_cast<double>(state.range(0));
  const bool retry_on = state.range(1) != 0;
  for (auto _ : state) {
    workload::Testbed bed(base_config(2));
    benchutil::maybe_audit(bed, "availability/setup");

    dqp::ExecutionPolicy policy;
    if (retry_on) {
      policy.retry.max_retries = 2;
      policy.retry.relookup = true;
    }
    dqp::DistributedQueryProcessor proc(bed.overlay(), policy);

    // Primitive probes with distinct bound subjects issued from devices all
    // around the system, so the batch touches many providers and rows.
    std::vector<dqp::BatchQuery> batch;
    for (int i = 0; i < 24; ++i) {
      dqp::BatchQuery q;
      q.query = sparql::parse_query(
          "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
          "SELECT ?p ?o WHERE { <http://example.org/people/p" +
          std::to_string(i * 5) + "> ?p ?o . }");
      q.initiator = bed.storage_addrs()[static_cast<std::size_t>(i) %
                                        bed.storage_addrs().size()];
      batch.push_back(std::move(q));
    }

    fault::ChurnProfile profile;
    profile.horizon_ms = 600;
    profile.fails_per_second = fails_per_second;
    profile.recover_fraction = 0.75;
    profile.recover_delay_ms = 150;
    profile.repair_every_ms = 200;
    fault::FaultSchedule schedule =
        fault::FaultSchedule::generate(profile, bed.storage_addrs(), 17);

    fault::FaultRunResult res =
        fault::run_with_faults(proc, bed.overlay(), batch, schedule);

    state.counters["success_rate"] = res.availability.success_rate();
    state.counters["affected"] =
        static_cast<double>(res.availability.affected);
    state.counters["retries_per_q"] = res.availability.retries_per_query();
    state.counters["convergence_ms"] = res.availability.convergence_ms();
    state.counters["faults_applied"] =
        static_cast<double>(res.injection_log.applied);
    benchutil::record_mean_extra_json(
        state,
        "availability/rate=" + std::to_string(state.range(0)) +
            "/retry=" + std::to_string(retry_on ? 1 : 0),
        res.batch.reports, res.availability.to_extra());

    // Post-run convergence must leave no failed node referenced anywhere —
    // the I6 bar the resurrection bug used to fail.
    fault::converge(bed.overlay(), res.batch.makespan);
    check::AuditOptions converged;
    converged.converged = true;
    converged.churned = true;  // lenient on drift, strict on I6
    benchutil::maybe_audit(bed.overlay(), "availability/converged", converged);
  }
}

BENCHMARK(BM_Churn_Availability)
    ->Args({0, 0})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({16, 0})
    ->Args({16, 1})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_Churn_IndexJoinSliceCost(benchmark::State& state) {
  // Index-node arrival (Sect. III-C): traffic of the location-table slice
  // transfer as the table grows.
  const auto persons = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    workload::TestbedConfig cfg = base_config(1);
    cfg.foaf.persons = persons;
    workload::Testbed bed(cfg);
    benchutil::maybe_audit(bed, "join-slice/setup");
    bed.network().reset_stats();
    bed.overlay().add_index_node(0);
    benchutil::maybe_audit(bed, "join-slice/joined", /*churned=*/true);
    auto idx = static_cast<std::size_t>(net::Category::kIndex);
    state.counters["slice_bytes"] =
        static_cast<double>(bed.network().stats().bytes_by[idx]);
    state.counters["join_msgs"] =
        static_cast<double>(bed.network().stats().messages);
    benchutil::record_raw_json("join-slice/persons=" + std::to_string(persons),
                               bed.network().stats());
  }
}

BENCHMARK(BM_Churn_IndexJoinSliceCost)
    ->Arg(100)
    ->Arg(300)
    ->Arg(1000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
