// E5 — OPTIONAL / left outer join site selection (Sect. IV-E): move-small
// vs query-site vs third-site across operand size ratios.
//
// Expected shape: move-small's shipped bytes track min(|Omega1|, |Omega2|);
// query-site ships both operands regardless, so it loses ground as the
// operands grow; third-site matches query-site's traffic but relocates the
// computation to the highest-capacity node.
#include "bench_util.hpp"
#include "workload/vocab.hpp"

namespace {

using namespace ahsw;
using optimizer::JoinSitePolicy;

/// Mandatory side: `left` persons with knows edges; optional side: `right`
/// of their targets have nicks. The left/right ratio is the sweep variable.
workload::Testbed make_bed(int left, int right) {
  workload::TestbedConfig cfg;
  cfg.index_nodes = 8;
  // Node 8 (the last one) stays empty and acts as the query initiator, so
  // query-site genuinely has to ship both operands.
  cfg.storage_nodes = 9;
  cfg.foaf.persons = 0;
  workload::Testbed bed(cfg);
  rdf::Term knows = rdf::Term::iri(std::string(workload::foaf::kKnows));
  rdf::Term nick = rdf::Term::iri(std::string(workload::foaf::kNick));
  auto person = [](int i) {
    return rdf::Term::iri("http://example.org/people/p" + std::to_string(i));
  };
  std::vector<std::vector<rdf::Triple>> shares(bed.storage_addrs().size());
  for (int i = 0; i < left; ++i) {
    shares[static_cast<std::size_t>(i) % 4].push_back(
        {person(i), knows, person(i % 50)});
  }
  for (int i = 0; i < right; ++i) {
    shares[4 + static_cast<std::size_t>(i) % 4].push_back(
        {person(i % 50), nick, rdf::Term::literal("nick" + std::to_string(i))});
  }
  for (std::size_t i = 0; i < shares.size(); ++i) {
    bed.overlay().share_triples(bed.storage_addrs()[i], shares[i], 0);
  }
  bed.network().reset_stats();
  return bed;
}

const char* kQuery =
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
    "SELECT ?x ?y ?n WHERE { ?x foaf:knows ?y . "
    "OPTIONAL { ?y foaf:nick ?n . } }";

// Selective variant: only rows whose optional part matched survive, so the
// join *output* is much smaller than its operands. This is the regime
// where move-small (compute where the data is, ship only the small answer)
// beats query-site (ship both operands to the initiator).
const char* kSelectiveQuery =
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
    "SELECT ?x ?y ?n WHERE { ?x foaf:knows ?y . "
    "OPTIONAL { ?y foaf:nick ?n . } FILTER(bound(?n) && regex(?n, \"7$\")) }";

void run_policy(benchmark::State& state, JoinSitePolicy policy_kind,
                const char* query = kQuery) {
  const int left = static_cast<int>(state.range(0));
  const int right = static_cast<int>(state.range(1));
  workload::Testbed bed = make_bed(left, right);
  benchutil::maybe_audit(bed, "optional/setup");
  // Give a fixed node extra capacity so third-site has a distinguished
  // choice.
  bed.overlay().storage_state(bed.storage_addrs()[7]).capacity = 10.0;
  dqp::ExecutionPolicy policy;
  policy.join_site = policy_kind;
  dqp::DistributedQueryProcessor proc(bed.overlay(), policy);
  std::string name =
      std::string(optimizer::join_site_policy_name(policy_kind)) +
      (query == kSelectiveQuery ? "/selective" : "") +
      "/left=" + std::to_string(left) + "/right=" + std::to_string(right);
  for (auto _ : state) {
    dqp::ExecutionReport rep;
    benchmark::DoNotOptimize(
        proc.execute(query, bed.storage_addrs().back(), &rep));
    benchutil::record_json(state, name, rep);
  }
}

void BM_Optional_MoveSmall(benchmark::State& state) {
  run_policy(state, JoinSitePolicy::kMoveSmall);
}
void BM_Optional_QuerySite(benchmark::State& state) {
  run_policy(state, JoinSitePolicy::kQuerySite);
}
void BM_Optional_ThirdSite(benchmark::State& state) {
  run_policy(state, JoinSitePolicy::kThirdSite);
}

// Args {left, right}: |Omega1| / |Omega2| from 1:8 to 8:1.
void configure(benchmark::internal::Benchmark* b) {
  b->Args({50, 400})
      ->Args({100, 200})
      ->Args({200, 200})
      ->Args({200, 100})
      ->Args({400, 50})
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Optional_MoveSmall)->Apply(configure);
BENCHMARK(BM_Optional_QuerySite)->Apply(configure);
BENCHMARK(BM_Optional_ThirdSite)->Apply(configure);

void BM_OptionalSelective_MoveSmall(benchmark::State& state) {
  run_policy(state, JoinSitePolicy::kMoveSmall, kSelectiveQuery);
}
void BM_OptionalSelective_QuerySite(benchmark::State& state) {
  run_policy(state, JoinSitePolicy::kQuerySite, kSelectiveQuery);
}

BENCHMARK(BM_OptionalSelective_MoveSmall)->Apply(configure);
BENCHMARK(BM_OptionalSelective_QuerySite)->Apply(configure);

}  // namespace
