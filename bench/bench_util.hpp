// Shared helpers for the experiment harness.
//
// The benchmarks report *simulated* metrics — total inter-site traffic and
// logical response time, the paper's two optimization criteria — through
// benchmark counters; wall-clock time of the simulation itself is
// irrelevant except in bench_local_engine. Every benchmark is deterministic
// (fixed seeds), so the emitted series are exactly reproducible.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "check/audit.hpp"
#include "dqp/processor.hpp"
#include "obs/json.hpp"
#include "workload/queries.hpp"
#include "workload/testbed.hpp"

namespace ahsw::benchutil {

/// Process-wide audit switch: on when bench_main saw `--audit` or the
/// AHSW_AUDIT environment variable asks for audits.
inline bool& audit_flag() {
  static bool flag = check::audit_enabled();
  return flag;
}
inline void set_audit(bool on) { audit_flag() = on; }

/// Process-wide batch-worker count: `--workers N` in bench_main (or the
/// AHSW_WORKERS environment variable). Batch benchmarks pass it through to
/// BatchOptions::workers; the parallel driver's byte-identity guarantee
/// means every simulated series stays identical, only wall-clock moves.
inline int& workers_flag() {
  static int workers = []() {
    const char* env = std::getenv("AHSW_WORKERS");
    const int n = env != nullptr ? std::atoi(env) : 1;
    return n > 1 ? n : 1;
  }();
  return workers;
}
inline void set_workers(int n) { workers_flag() = n > 1 ? n : 1; }
inline int batch_workers() { return workers_flag(); }

/// Run the invariant auditor over a benchmark system when auditing is on.
/// Corruption aborts the process: a benchmark series must never publish
/// numbers measured against a corrupted system.
inline void maybe_audit(const overlay::HybridOverlay& overlay,
                        const std::string& where,
                        const check::AuditOptions& opt) {
  if (!audit_flag()) return;
  check::AuditReport rep = check::audit(overlay, opt);
  if (!rep.clean()) {
    std::cerr << "[audit] corruption at " << where << ":\n"
              << rep.to_string() << "\n";
    std::exit(1);
  }
}
inline void maybe_audit(const overlay::HybridOverlay& overlay,
                        const std::string& where, bool churned = false) {
  check::AuditOptions opt;
  opt.churned = churned;
  maybe_audit(overlay, where, opt);
}
inline void maybe_audit(workload::Testbed& bed, const std::string& where,
                        bool churned = false) {
  maybe_audit(bed.overlay(), where, churned);
}

/// Publish one execution report's metrics as benchmark counters.
inline void report_counters(benchmark::State& state,
                            const dqp::ExecutionReport& rep) {
  state.counters["messages"] = static_cast<double>(rep.traffic.messages);
  state.counters["bytes"] = static_cast<double>(rep.traffic.bytes);
  state.counters["data_bytes"] = static_cast<double>(
      rep.traffic.bytes_by[static_cast<std::size_t>(net::Category::kData)] +
      rep.traffic
          .bytes_by[static_cast<std::size_t>(net::Category::kResult)]);
  state.counters["resp_ms"] = rep.response_time;
  state.counters["ring_hops"] = static_cast<double>(rep.ring_hops);
  state.counters["providers"] = static_cast<double>(rep.providers_contacted);
}

/// Aggregate counters over a batch of reports (means).
inline void report_mean_counters(benchmark::State& state,
                                 const std::vector<dqp::ExecutionReport>& reps) {
  double msgs = 0, bytes = 0, resp = 0, hops = 0;
  for (const dqp::ExecutionReport& r : reps) {
    msgs += static_cast<double>(r.traffic.messages);
    bytes += static_cast<double>(r.traffic.bytes);
    resp += r.response_time;
    hops += static_cast<double>(r.ring_hops);
  }
  auto n = static_cast<double>(reps.empty() ? 1 : reps.size());
  state.counters["msgs_per_q"] = msgs / n;
  state.counters["bytes_per_q"] = bytes / n;
  state.counters["resp_ms"] = resp / n;
  state.counters["hops_per_q"] = hops / n;
}

/// Same as report_counters, plus one BenchRecord into the process-wide
/// BenchSink (written as BENCH_<experiment>.json on exit). `record_name`
/// identifies the sweep point — benchmark State carries no name accessor in
/// the bundled library version, so call sites pass it explicitly. With a
/// trace, the record carries the per-phase cost rollup.
inline void record_json(benchmark::State& state, std::string record_name,
                        const dqp::ExecutionReport& rep,
                        const obs::QueryTrace* trace = nullptr) {
  report_counters(state, rep);
  obs::BenchRecord r;
  r.bench = std::move(record_name);
  r.traffic = rep.traffic;
  r.response_ms = rep.response_time;
  if (trace != nullptr) r.phases = obs::phase_rollup(*trace);
  obs::BenchSink::instance().record(std::move(r));
}

/// Same as report_mean_counters, plus one aggregate BenchRecord (traffic
/// summed over the batch, response time averaged) into the BenchSink.
inline void record_mean_json(benchmark::State& state, std::string record_name,
                             const std::vector<dqp::ExecutionReport>& reps,
                             const obs::QueryTrace* trace = nullptr) {
  report_mean_counters(state, reps);
  obs::BenchRecord r;
  r.bench = std::move(record_name);
  r.queries = reps.empty() ? 1 : reps.size();
  double resp = 0;
  for (const dqp::ExecutionReport& rep : reps) {
    r.traffic.accumulate(rep.traffic);
    resp += rep.response_time;
  }
  r.response_ms = resp / static_cast<double>(r.queries);
  if (trace != nullptr) r.phases = obs::phase_rollup(*trace);
  obs::BenchSink::instance().record(std::move(r));
}

/// record_mean_json plus arbitrary extra metrics carried into the record's
/// "extra" JSON object (e.g. fault::AvailabilityReport::to_extra()).
inline void record_mean_extra_json(
    benchmark::State& state, std::string record_name,
    const std::vector<dqp::ExecutionReport>& reps,
    std::map<std::string, double> extra,
    const obs::QueryTrace* trace = nullptr) {
  report_mean_counters(state, reps);
  obs::BenchRecord r;
  r.bench = std::move(record_name);
  r.queries = reps.empty() ? 1 : reps.size();
  double resp = 0;
  for (const dqp::ExecutionReport& rep : reps) {
    r.traffic.accumulate(rep.traffic);
    resp += rep.response_time;
  }
  r.response_ms = resp / static_cast<double>(r.queries);
  if (trace != nullptr) r.phases = obs::phase_rollup(*trace);
  r.extra = std::move(extra);
  obs::BenchSink::instance().record(std::move(r));
}

/// BenchRecord from a raw traffic delta, for benchmarks that measure
/// overlay maintenance (publish, join, repair) rather than query execution
/// and so have no ExecutionReport.
inline void record_raw_json(std::string record_name,
                            const net::TrafficStats& traffic,
                            double response_ms = 0.0,
                            std::uint64_t queries = 1) {
  obs::BenchRecord r;
  r.bench = std::move(record_name);
  r.traffic = traffic;
  r.response_ms = response_ms;
  r.queries = queries;
  obs::BenchSink::instance().record(std::move(r));
}

}  // namespace ahsw::benchutil
