// Shared helpers for the experiment harness.
//
// The benchmarks report *simulated* metrics — total inter-site traffic and
// logical response time, the paper's two optimization criteria — through
// benchmark counters; wall-clock time of the simulation itself is
// irrelevant except in bench_local_engine. Every benchmark is deterministic
// (fixed seeds), so the emitted series are exactly reproducible.
#pragma once

#include <benchmark/benchmark.h>

#include "dqp/processor.hpp"
#include "workload/queries.hpp"
#include "workload/testbed.hpp"

namespace ahsw::benchutil {

/// Publish one execution report's metrics as benchmark counters.
inline void report_counters(benchmark::State& state,
                            const dqp::ExecutionReport& rep) {
  state.counters["messages"] = static_cast<double>(rep.traffic.messages);
  state.counters["bytes"] = static_cast<double>(rep.traffic.bytes);
  state.counters["data_bytes"] = static_cast<double>(
      rep.traffic.bytes_by[static_cast<std::size_t>(net::Category::kData)] +
      rep.traffic
          .bytes_by[static_cast<std::size_t>(net::Category::kResult)]);
  state.counters["resp_ms"] = rep.response_time;
  state.counters["ring_hops"] = static_cast<double>(rep.ring_hops);
  state.counters["providers"] = static_cast<double>(rep.providers_contacted);
}

/// Aggregate counters over a batch of reports (means).
inline void report_mean_counters(benchmark::State& state,
                                 const std::vector<dqp::ExecutionReport>& reps) {
  double msgs = 0, bytes = 0, resp = 0, hops = 0;
  for (const dqp::ExecutionReport& r : reps) {
    msgs += static_cast<double>(r.traffic.messages);
    bytes += static_cast<double>(r.traffic.bytes);
    resp += r.response_time;
    hops += static_cast<double>(r.ring_hops);
  }
  auto n = static_cast<double>(reps.empty() ? 1 : reps.size());
  state.counters["msgs_per_q"] = msgs / n;
  state.counters["bytes_per_q"] = bytes / n;
  state.counters["resp_ms"] = resp / n;
  state.counters["hops_per_q"] = hops / n;
}

}  // namespace ahsw::benchutil
