// E3 — primitive-query strategies (Sect. IV-C): Basic vs Chain vs
// FrequencyChain across provider counts and data skew.
//
// Expected shape (paper's own claims): Basic minimizes response time at the
// cost of transmission; FrequencyChain minimizes transmission (largest
// provider's mappings travel once) at the cost of a sequential chain's
// response time; Chain sits between on traffic.
#include <cmath>
#include <string>

#include "bench_util.hpp"
#include "obs/trace.hpp"
#include "workload/vocab.hpp"

namespace {

using namespace ahsw;
using optimizer::PrimitiveStrategy;

/// A controlled scenario: `providers` storage nodes hold matches for one
/// pattern, with sizes following the given skew (size_i ~ base * (i+1)^skew).
workload::Testbed make_bed(int providers, double skew) {
  workload::TestbedConfig cfg;
  cfg.index_nodes = 8;
  // One extra, data-free storage node acts as the query initiator so that
  // no strategy gets a free ride by ending its chain at the initiator.
  cfg.storage_nodes = static_cast<std::size_t>(providers) + 1;
  cfg.foaf.persons = 0;
  workload::Testbed bed(cfg);

  rdf::Term knows = rdf::Term::iri(std::string(workload::foaf::kKnows));
  rdf::Term target = rdf::Term::iri("http://example.org/people/p0");
  for (int i = 0; i < providers; ++i) {
    // Permute sizes across addresses so that address order (the plain
    // chain) differs from ascending-frequency order (the optimized chain).
    int rank = (i * 5 + 3) % providers;
    int count = static_cast<int>(
        2.0 * std::pow(static_cast<double>(rank + 1), 1.0 + skew));
    std::vector<rdf::Triple> triples;
    for (int j = 0; j < count; ++j) {
      triples.push_back(
          {rdf::Term::iri("http://example.org/people/n" + std::to_string(i) +
                          "_" + std::to_string(j)),
           knows, target});
    }
    bed.overlay().share_triples(bed.storage_addrs()[static_cast<std::size_t>(i)],
                                triples, 0);
  }
  bed.network().reset_stats();
  return bed;
}

const char* kQuery =
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
    "SELECT ?x WHERE { ?x foaf:knows <http://example.org/people/p0> . }";

void run_strategy(benchmark::State& state, PrimitiveStrategy strategy) {
  const int providers = static_cast<int>(state.range(0));
  const double skew = static_cast<double>(state.range(1)) / 10.0;
  workload::Testbed bed = make_bed(providers, skew);
  benchutil::maybe_audit(bed, "primitive/setup");
  dqp::ExecutionPolicy policy;
  policy.primitive = strategy;
  dqp::DistributedQueryProcessor proc(bed.overlay(), policy);
  // Trace every execution so the emitted record carries the per-phase cost
  // breakdown (and the phase byte totals sum to the aggregate traffic).
  obs::QueryTrace trace;
  proc.set_trace(&trace);
  char skew_str[16];
  std::snprintf(skew_str, sizeof skew_str, "%.1f", skew);
  std::string name =
      std::string(optimizer::primitive_strategy_name(strategy)) +
      "/providers=" + std::to_string(providers) + "/skew=" + skew_str;
  for (auto _ : state) {
    trace.clear();
    dqp::ExecutionReport rep;
    benchmark::DoNotOptimize(
        proc.execute(kQuery, bed.storage_addrs().back(), &rep));
    benchutil::record_json(state, name, rep, &trace);
  }
}

void BM_Primitive_Basic(benchmark::State& state) {
  run_strategy(state, PrimitiveStrategy::kBasic);
}
void BM_Primitive_Chain(benchmark::State& state) {
  run_strategy(state, PrimitiveStrategy::kChain);
}
void BM_Primitive_FrequencyChain(benchmark::State& state) {
  run_strategy(state, PrimitiveStrategy::kFrequencyChain);
}

// Args: {provider count, skew*10}. skew 0 = balanced providers, 10 = heavy.
void configure(benchmark::internal::Benchmark* b) {
  // Small provider counts included deliberately: the chain strategies beat
  // Basic on traffic only while the chain is short (the paper's Sect. IV-C
  // example has exactly three providers); the crossover is the result.
  for (int providers : {2, 3, 4, 8, 16}) {
    for (int skew10 : {0, 5, 10}) b->Args({providers, skew10});
  }
  b->Iterations(1)->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Primitive_Basic)->Apply(configure);
BENCHMARK(BM_Primitive_Chain)->Apply(configure);
BENCHMARK(BM_Primitive_FrequencyChain)->Apply(configure);

void BM_Primitive_Broadcast(benchmark::State& state) {
  // The (?s,?p,?o) flooding case: cost grows with the number of storage
  // nodes because the index cannot narrow anything.
  const int nodes = static_cast<int>(state.range(0));
  workload::TestbedConfig cfg;
  cfg.index_nodes = 8;
  cfg.storage_nodes = static_cast<std::size_t>(nodes);
  cfg.foaf.persons = 100;
  workload::Testbed bed(cfg);
  benchutil::maybe_audit(bed, "primitive/broadcast-setup");
  dqp::DistributedQueryProcessor proc(bed.overlay());
  obs::QueryTrace trace;
  proc.set_trace(&trace);
  for (auto _ : state) {
    trace.clear();
    dqp::ExecutionReport rep;
    benchmark::DoNotOptimize(proc.execute(
        "SELECT ?s ?p ?o WHERE { ?s ?p ?o . } LIMIT 10",
        bed.storage_addrs().front(), &rep));
    benchutil::record_json(state, "broadcast/nodes=" + std::to_string(nodes),
                           rep, &trace);
  }
}

BENCHMARK(BM_Primitive_Broadcast)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
