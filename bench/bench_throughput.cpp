// E14 — concurrent multi-query throughput through the DAG engine's shared
// event scheduler: N initiators issue a mixed workload simultaneously and
// the batch makespan is compared against running the same queries serially.
//
// Expected shape: with no per-node contention the makespan equals the
// slowest single query (perfect overlap), so speedup approaches N for a
// balanced mix; a non-zero service time shifts queueing delay onto queries
// whose work collides on a node, degrading speedup gracefully. Traffic is
// identical in all variants — concurrency costs time, never bytes.
#include <numeric>
#include <string>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "obs/trace.hpp"
#include "sparql/format.hpp"

namespace {

using namespace ahsw;

workload::TestbedConfig make_config() {
  workload::TestbedConfig cfg;
  cfg.index_nodes = 8;
  cfg.storage_nodes = 8;
  cfg.foaf.persons = 120;
  cfg.foaf.seed = 91;
  cfg.partition.overlap = 0.25;
  cfg.partition.seed = 92;
  cfg.overlay.seed = 93;
  return cfg;
}

constexpr std::string_view kPrologue =
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n";

/// The batch: `n` queries cycling through the plan classes, one initiator
/// per storage node (round-robin).
std::vector<std::string> make_queries(int n) {
  const char* bodies[] = {
      "SELECT ?x ?o WHERE { ?x foaf:knows ?o . }",
      "SELECT ?x ?n ?o WHERE { ?x foaf:name ?n . ?x foaf:knows ?o . }",
      "SELECT ?x ?y ?n WHERE { ?x foaf:knows ?y . "
      "OPTIONAL { ?y foaf:nick ?n . } }",
      "SELECT ?x WHERE { { ?x foaf:nick ?n . } UNION "
      "{ ?x foaf:mbox ?m . } }",
      "SELECT ?x ?n WHERE { ?x foaf:name ?n . FILTER regex(?n, \"a\") }",
      "ASK { ?x foaf:knows ?y . }",
      "SELECT ?o WHERE { <http://example.org/people/p1> foaf:knows ?o . }",
      "SELECT DISTINCT ?n WHERE { ?x foaf:name ?n . } ORDER BY ?n LIMIT 5",
  };
  std::vector<std::string> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(std::string(kPrologue) +
                  bodies[static_cast<std::size_t>(i) % std::size(bodies)]);
  }
  return out;
}

std::vector<net::NodeAddress> make_initiators(const workload::Testbed& bed,
                                              std::size_t n) {
  std::vector<net::NodeAddress> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(bed.storage_addrs()[i % bed.storage_addrs().size()]);
  }
  return out;
}

/// Serial baseline: the same queries one at a time on a fresh identical
/// testbed; returns the sum of their response times.
net::SimTime serial_sum(const std::vector<std::string>& queries) {
  workload::Testbed bed(make_config());
  dqp::DistributedQueryProcessor proc(bed.overlay());
  net::SimTime sum = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    dqp::ExecutionReport rep;
    (void)proc.execute(queries[i],
                       bed.storage_addrs()[i % bed.storage_addrs().size()],
                       &rep);
    sum += rep.response_time;
  }
  return sum;
}

/// Under --audit, check I5 conservation of the interleaved trace against
/// the batch-wide network delta AND exact per-query attribution (the
/// per-query traffic reports must sum to the delta, nothing lost, nothing
/// double-charged). Corruption aborts: see benchutil::maybe_audit.
void audit_batch(const obs::QueryTrace* trace, const net::TrafficStats& delta,
                 const dqp::BatchResult& r) {
  if (!benchutil::audit_flag()) return;
  check::AuditReport rep;
  if (trace != nullptr) check::audit_conservation(*trace, delta, rep);
  net::TrafficStats sum;
  for (const dqp::ExecutionReport& q : r.reports) {
    sum.accumulate(q.traffic);
  }
  bool attributed = sum.messages == delta.messages &&
                    sum.bytes == delta.bytes && sum.timeouts == delta.timeouts;
  if (!rep.pristine() || !attributed) {
    std::cerr << "[audit] batch conservation violated:\n"
              << rep.to_string() << "\nattributed msgs=" << sum.messages
              << "/" << delta.messages << " bytes=" << sum.bytes << "/"
              << delta.bytes << "\n";
    std::exit(1);
  }
}

// Args: {N initiators, service_ms*10}.
void BM_Throughput_Batch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const double service_ms = static_cast<double>(state.range(1)) / 10.0;
  std::vector<std::string> queries = make_queries(n);
  const net::SimTime serial = serial_sum(queries);

  workload::Testbed bed(make_config());
  benchutil::maybe_audit(bed, "throughput/setup");
  dqp::DistributedQueryProcessor proc(bed.overlay());
  obs::QueryTrace trace;
  dqp::BatchOptions opts;
  opts.service.service_ms = service_ms;
  // `--workers N` routes the batch through the parallel driver (byte-
  // identical simulated series, faster wall-clock). The parallel driver
  // does not trace, so the span-based I5 audit only runs on the serial
  // path; the per-query traffic attribution check runs either way.
  opts.workers = benchutil::batch_workers();
  const bool traced = opts.workers <= 1 || service_ms > 0;
  if (traced) proc.set_trace(&trace);

  char svc[16];
  std::snprintf(svc, sizeof svc, "%.1f", service_ms);
  std::string name = "batch/n=" + std::to_string(n) + "/service_ms=" + svc;

  for (auto _ : state) {
    trace.clear();
    const net::TrafficStats before = bed.network().stats();
    dqp::BatchResult r =
        proc.execute_batch(queries, make_initiators(bed, queries.size()), opts);
    audit_batch(traced ? &trace : nullptr,
                bed.network().stats().delta_since(before), r);

    state.counters["makespan_ms"] = r.makespan;
    state.counters["serial_ms"] = serial;
    state.counters["speedup"] = serial / r.makespan;
    benchutil::record_mean_json(state, name, r.reports,
                                traced ? &trace : nullptr);
  }
  benchutil::maybe_audit(bed, "throughput/done");
}

BENCHMARK(BM_Throughput_Batch)
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({8, 0})
    ->Args({8, 10})
    ->Args({8, 40})
    ->Args({16, 10})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// E15 — location-row cache effectiveness vs workload skew (docs/caching.md).
//
// The same Zipf-skewed point-query batch (E1 single-pattern / E2 two-pattern
// subject queries) runs cache-off and cache-on against fresh identical
// testbeds. Caching changes only where location rows come from, never what
// they say, so the result tables must stay byte-identical while
// index-category bytes drop with skew: the hotter the head of the Zipf
// distribution, the more lookups a few cached rows absorb.

/// Zipf-skewed E1/E2 batch: person ranks drawn from ZipfSampler (rank 0
/// hottest), even queries single-pattern, odd queries two-pattern.
std::vector<std::string> make_zipf_queries(int n, double skew) {
  common::Rng rng(94);
  common::ZipfSampler zipf(make_config().foaf.persons, skew);
  std::vector<std::string> out;
  for (int i = 0; i < n; ++i) {
    const std::string p = "<http://example.org/people/p" +
                          std::to_string(zipf.sample(rng)) + ">";
    if (i % 2 == 0) {
      out.push_back(std::string(kPrologue) + "SELECT ?o WHERE { " + p +
                    " foaf:knows ?o . }");
    } else {
      out.push_back(std::string(kPrologue) + "SELECT ?n ?o WHERE { " + p +
                    " foaf:name ?n . " + p + " foaf:knows ?o . }");
    }
  }
  return out;
}

/// Caches live per initiator, so hit rate depends on the same node
/// re-asking for a key: a small hammering pool of 4 initiators models the
/// "few hot consumers" shape the cache targets.
std::vector<net::NodeAddress> cache_initiators(const workload::Testbed& bed,
                                               std::size_t n) {
  std::vector<net::NodeAddress> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(bed.storage_addrs()[i % 4]);
  }
  return out;
}

std::uint64_t index_bytes(const std::vector<dqp::ExecutionReport>& reps) {
  std::uint64_t b = 0;
  for (const dqp::ExecutionReport& r : reps) {
    b += r.traffic.bytes_by[static_cast<std::size_t>(net::Category::kIndex)];
  }
  return b;
}

// Args: {queries, skew*100}.
void BM_Cache_Zipf(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const double skew = static_cast<double>(state.range(1)) / 100.0;
  std::vector<std::string> queries = make_zipf_queries(n, skew);

  char sk[16];
  std::snprintf(sk, sizeof sk, "%.2f", skew);
  std::string name = "cache_zipf/n=" + std::to_string(n) + "/s=" + sk;

  for (auto _ : state) {
    workload::Testbed base(make_config());
    dqp::DistributedQueryProcessor proc_off(base.overlay());
    dqp::BatchResult off = proc_off.execute_batch(
        queries, cache_initiators(base, queries.size()));

    workload::Testbed bed(make_config());
    benchutil::maybe_audit(bed, "cache_zipf/setup");
    dqp::DistributedQueryProcessor proc(bed.overlay());
    proc.policy().cache.enabled = true;
    bed.overlay().configure_caches(proc.policy().cache);
    dqp::BatchResult on =
        proc.execute_batch(queries, cache_initiators(bed, queries.size()));

    // Caching must be invisible to query answers.
    bool identical = off.results.size() == on.results.size();
    for (std::size_t i = 0; identical && i < on.results.size(); ++i) {
      identical = sparql::to_table(off.results[i]) ==
                  sparql::to_table(on.results[i]);
    }
    if (!identical) {
      std::cerr << "[cache_zipf] cache-on results diverge from cache-off\n";
      std::exit(1);
    }

    overlay::CacheStats cs;
    for (const dqp::ExecutionReport& r : on.reports) cs.accumulate(r.cache);
    const double lookups = static_cast<double>(cs.hits + cs.misses);
    const double hit_rate =
        lookups > 0 ? static_cast<double>(cs.hits) / lookups : 0.0;
    const auto bytes_off = static_cast<double>(index_bytes(off.reports));
    const auto bytes_on = static_cast<double>(index_bytes(on.reports));
    const double saved_pct =
        bytes_off > 0 ? 100.0 * (bytes_off - bytes_on) / bytes_off : 0.0;

    state.counters["cache_hit_rate"] = hit_rate;
    state.counters["index_saved_pct"] = saved_pct;
    benchutil::record_mean_extra_json(state, name, on.reports,
                                      {{"cache_hit_rate", hit_rate},
                                       {"index_bytes_off", bytes_off},
                                       {"index_bytes_on", bytes_on},
                                       {"index_saved_pct", saved_pct}});

    // Age cached rows to the batch end so the auditor exercises the
    // documented staleness bound rather than trivially fresh rows.
    check::AuditOptions opt;
    opt.now = on.makespan;
    benchutil::maybe_audit(bed.overlay(), "cache_zipf/done", opt);
  }
}

BENCHMARK(BM_Cache_Zipf)
    ->Args({64, 0})
    ->Args({64, 80})
    ->Args({64, 120})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
