// E9 — end-to-end scalability: a mixed query workload (all five classes of
// Sect. IV) against growing system sizes and datasets.
//
// Expected shape: per-query ring hops grow logarithmically with the index-
// node count; per-query traffic grows with the data per pattern, not with
// the total system size (the whole point of the two-level index vs
// flooding).
#include "bench_util.hpp"
#include "workload/queries.hpp"

namespace {

using namespace ahsw;

void run_mix(benchmark::State& state, std::size_t index_nodes,
             std::size_t storage_nodes, std::size_t persons) {
  workload::TestbedConfig cfg;
  cfg.index_nodes = index_nodes;
  cfg.storage_nodes = storage_nodes;
  cfg.foaf.persons = persons;
  cfg.foaf.seed = 101;
  cfg.partition.seed = 102;
  cfg.partition.overlap = 0.15;
  workload::Testbed bed(cfg);
  benchutil::maybe_audit(bed, "scalability/setup");
  dqp::DistributedQueryProcessor proc(bed.overlay());

  workload::QueryMixConfig mix;
  std::vector<std::string> queries =
      workload::generate_query_mix(30, cfg.foaf, mix);

  for (auto _ : state) {
    std::vector<dqp::ExecutionReport> reports;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      dqp::ExecutionReport rep;
      benchmark::DoNotOptimize(proc.execute(
          queries[i], bed.storage_addrs()[i % bed.storage_addrs().size()],
          &rep));
      reports.push_back(rep);
    }
    benchutil::record_mean_json(state,
                                "mix/index=" + std::to_string(index_nodes) +
                                    "/storage=" + std::to_string(storage_nodes) +
                                    "/persons=" + std::to_string(persons),
                                reports);
    state.counters["triples"] =
        static_cast<double>(bed.overlay().merged_store().size());
  }
}

void BM_Scalability_IndexNodes(benchmark::State& state) {
  run_mix(state, static_cast<std::size_t>(state.range(0)), 16, 200);
}
BENCHMARK(BM_Scalability_IndexNodes)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_Scalability_StorageNodes(benchmark::State& state) {
  run_mix(state, 16, static_cast<std::size_t>(state.range(0)), 200);
}
BENCHMARK(BM_Scalability_StorageNodes)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_Scalability_DatasetSize(benchmark::State& state) {
  run_mix(state, 16, 16, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_Scalability_DatasetSize)
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->Arg(800)
    ->Arg(1600)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
