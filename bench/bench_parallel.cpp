// E14-P — the deterministic parallel batch driver at bulk scale: a 10k-query
// mixed workload against a 1000-node index ring, swept over worker counts
// {1, 2, 4, 8}.
//
// The driver's contract (docs/execution_engine.md "Parallel driver") is that
// parallelism changes wall-clock time only, never simulated time: every
// simulated observable — per-query results, reports, network-wide traffic,
// makespan — must be byte-identical to the workers=1 run. This benchmark
// *enforces* that (divergence aborts, like the cache A/B in
// bench_throughput) and reports the wall-clock speedup plus the per-worker
// makespan attribution that shows how the qid % workers partition balances
// the shards. Under --audit, every sweep point runs the converged invariant
// audit (I1-I6) over the master overlay after the merge.
// ahsw-lint: allow(D1) E14-P measures the *wall-clock* speedup of the
// parallel driver by design; no wall-clock value feeds the simulation —
// byte-identity vs the serial run is enforced right next to the reads.
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "sparql/ast.hpp"

namespace {

using namespace ahsw;

constexpr int kQueries = 10000;
constexpr std::size_t kRingNodes = 1000;
// Divisible by every swept worker count, so each initiator's queries fall
// into one residue class of qid % workers and the per-initiator caches stay
// partition-independent (the byte-identity precondition). Kept modest so
// per-query work (provider scans over every storage node for the full-scan
// bodies) doesn't dwarf the scheduler + driver costs the sweep measures.
constexpr std::size_t kStorageNodes = 16;

workload::TestbedConfig make_config() {
  workload::TestbedConfig cfg;
  cfg.index_nodes = kRingNodes;
  cfg.storage_nodes = kStorageNodes;
  cfg.foaf.persons = 100;
  cfg.foaf.seed = 95;
  cfg.partition.overlap = 0.25;
  cfg.partition.seed = 96;
  cfg.overlay.seed = 97;
  return cfg;
}

constexpr std::string_view kPrologue =
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n";

/// The 10k-query batch: the E14 plan-class mix, parsed once per distinct
/// body and fanned out round-robin over the storage nodes.
std::vector<dqp::BatchQuery> make_batch(const workload::Testbed& bed) {
  const char* bodies[] = {
      "SELECT ?x ?o WHERE { ?x foaf:knows ?o . }",
      "SELECT ?x ?n ?o WHERE { ?x foaf:name ?n . ?x foaf:knows ?o . }",
      "SELECT ?x ?y ?n WHERE { ?x foaf:knows ?y . "
      "OPTIONAL { ?y foaf:nick ?n . } }",
      "SELECT ?x WHERE { { ?x foaf:nick ?n . } UNION "
      "{ ?x foaf:mbox ?m . } }",
      "SELECT ?x ?n WHERE { ?x foaf:name ?n . FILTER regex(?n, \"a\") }",
      "ASK { ?x foaf:knows ?y . }",
      "SELECT ?o WHERE { <http://example.org/people/p1> foaf:knows ?o . }",
      "SELECT DISTINCT ?n WHERE { ?x foaf:name ?n . } ORDER BY ?n LIMIT 5",
  };
  std::vector<sparql::Query> parsed;
  for (const char* b : bodies) {
    parsed.push_back(sparql::parse_query(std::string(kPrologue) + b));
  }
  std::vector<dqp::BatchQuery> out;
  out.reserve(kQueries);
  for (int i = 0; i < kQueries; ++i) {
    const auto u = static_cast<std::size_t>(i);
    out.push_back(dqp::BatchQuery{
        parsed[u % parsed.size()],
        bed.storage_addrs()[u % bed.storage_addrs().size()]});
  }
  return out;
}

/// One shared system + batch across the sweep: with caching off and no
/// faults the batch leaves the overlay untouched, so every sweep point
/// starts from the identical state and the 1k-node ring is built once.
struct Fixture {
  workload::Testbed bed;
  std::vector<dqp::BatchQuery> batch;
  Fixture() : bed(make_config()), batch(make_batch(bed)) {}
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

/// The workers=1 run, kept for the byte-identity check and the speedup
/// denominator (sweep points run in registration order, workers=1 first).
struct Baseline {
  bool ready = false;
  double wall_ms = 0;
  dqp::BatchResult result;
  net::TrafficStats delta;
};

Baseline& baseline() {
  static Baseline b;
  return b;
}

void die(const std::string& what, std::size_t i) {
  std::cerr << "[parallel] workers>1 diverges from serial at query " << i
            << ": " << what << "\n";
  std::exit(1);
}

/// Abort on any simulated-observable divergence from the serial baseline.
void check_identity(const dqp::BatchResult& r, const net::TrafficStats& delta) {
  const Baseline& base = baseline();
  if (r.results.size() != base.result.results.size()) die("result count", 0);
  if (r.makespan != base.result.makespan) die("makespan", 0);
  for (std::size_t i = 0; i < r.results.size(); ++i) {
    if (r.results[i].solutions.rows() != base.result.results[i].solutions.rows())
      die("solution rows", i);
    if (r.results[i].ask_answer != base.result.results[i].ask_answer)
      die("ask answer", i);
    const dqp::ExecutionReport& a = r.reports[i];
    const dqp::ExecutionReport& b = base.result.reports[i];
    if (a.traffic.messages != b.traffic.messages ||
        a.traffic.bytes != b.traffic.bytes ||
        a.traffic.timeouts != b.traffic.timeouts)
      die("report traffic", i);
    if (a.response_time != b.response_time) die("response time", i);
    if (a.ring_hops != b.ring_hops || a.index_lookups != b.index_lookups)
      die("lookup counters", i);
  }
  if (delta.messages != base.delta.messages || delta.bytes != base.delta.bytes ||
      delta.timeouts != base.delta.timeouts)
    die("network delta", 0);
}

// Arg: worker count.
void BM_ParallelBatch_Bulk(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  Fixture& f = fixture();
  dqp::DistributedQueryProcessor proc(f.bed.overlay());
  dqp::BatchOptions opts;
  opts.workers = workers;

  std::string name = "parallel/q=" + std::to_string(kQueries) +
                     "/ring=" + std::to_string(kRingNodes) +
                     "/workers=" + std::to_string(workers);

  for (auto _ : state) {
    const net::TrafficStats before = f.bed.network().stats();
    // ahsw-lint: allow(D1) wall-clock is the measurand (see file header).
    const auto t0 = std::chrono::steady_clock::now();
    dqp::BatchResult r = proc.execute_batch(f.batch, opts);
    // ahsw-lint: allow(D1) second wall-clock read closing the measurement.
    const auto t1 = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const net::TrafficStats delta =
        f.bed.network().stats().delta_since(before);

    std::map<std::string, double> extra;
    extra["workers"] = workers;
    extra["wall_ms"] = wall_ms;
    if (workers == 1) {
      Baseline& base = baseline();
      base.ready = true;
      base.wall_ms = wall_ms;
      base.result = r;
      base.delta = delta;
    } else if (baseline().ready) {
      check_identity(r, delta);
      const double speedup = baseline().wall_ms / wall_ms;
      state.counters["speedup"] = speedup;
      extra["speedup_vs_serial"] = speedup;
      // Per-worker makespan attribution: how evenly qid % workers spreads
      // the simulated work across the shards.
      for (std::size_t w = 0; w < r.worker_makespans.size(); ++w) {
        extra["worker" + std::to_string(w) + "_makespan_ms"] =
            r.worker_makespans[w];
      }
    }
    state.counters["wall_ms"] = wall_ms;
    state.counters["makespan_ms"] = r.makespan;
    benchutil::record_mean_extra_json(state, name, r.reports, std::move(extra));

    // Converged invariant audit (I1-I6): the merge must leave the master
    // overlay indistinguishable from one that ran the batch serially.
    check::AuditOptions opt;
    opt.converged = true;
    benchutil::maybe_audit(f.bed.overlay(), name, opt);
  }
}

BENCHMARK(BM_ParallelBatch_Bulk)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// -- traced sweep -----------------------------------------------------------
//
// The lifted traced-batch fallback: workers record private span forests the
// master grafts back in query order, so a traced parallel batch must render
// the *same trace* as a traced serial run. The sweep enforces this on a
// 1k-query prefix (span forests of the full 10k batch would dominate
// memory, not the driver) by digesting every query's span subtree — all
// fields, recursively — and aborting on the first divergent query.

constexpr int kTracedQueries = 1000;

/// FNV-1a over the canonical bytes of a span subtree: kind, label, site,
/// times, every counter (incl. per-category), peers, and children in order.
void digest_span(const obs::QueryTrace& t, obs::SpanId id,
                 std::uint64_t& h) {
  const auto mix = [&h](const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 0x100000001b3ull;
    }
  };
  const obs::Span& s = t.span(id);
  const auto kind = static_cast<std::uint8_t>(s.kind);
  mix(&kind, sizeof kind);
  mix(s.label.data(), s.label.size());
  mix(&s.site, sizeof s.site);
  mix(&s.begin, sizeof s.begin);
  mix(&s.end, sizeof s.end);
  mix(&s.messages, sizeof s.messages);
  mix(&s.bytes, sizeof s.bytes);
  mix(&s.timeouts, sizeof s.timeouts);
  mix(s.messages_by, sizeof s.messages_by);
  mix(s.bytes_by, sizeof s.bytes_by);
  mix(s.timeouts_by, sizeof s.timeouts_by);
  for (net::NodeAddress peer : s.peers) mix(&peer, sizeof peer);
  const std::size_t n = s.children.size();
  mix(&n, sizeof n);
  for (obs::SpanId c : s.children) digest_span(t, c, h);
}

[[nodiscard]] std::uint64_t digest_root(const obs::QueryTrace& t,
                                        obs::SpanId root) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  if (root != obs::kNoSpan) digest_span(t, root, h);
  return h;
}

struct TracedBaseline {
  bool ready = false;
  std::vector<std::uint64_t> digests;  // one per query's span subtree
  std::vector<std::vector<std::string>> plan_notes;  // incl. EXPLAIN lines
  net::TrafficStats delta;
};

TracedBaseline& traced_baseline() {
  static TracedBaseline b;
  return b;
}

// Arg: worker count. Registered after the bulk sweep; workers=1 runs first
// and seeds the traced baseline.
void BM_ParallelBatch_Traced(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  Fixture& f = fixture();
  const std::vector<dqp::BatchQuery> batch(
      f.batch.begin(), f.batch.begin() + kTracedQueries);
  dqp::DistributedQueryProcessor proc(f.bed.overlay());
  dqp::BatchOptions opts;
  opts.workers = workers;

  std::string name = "parallel_traced/q=" + std::to_string(kTracedQueries) +
                     "/ring=" + std::to_string(kRingNodes) +
                     "/workers=" + std::to_string(workers);

  for (auto _ : state) {
    obs::QueryTrace trace;
    proc.set_trace(&trace);
    const net::TrafficStats before = f.bed.network().stats();
    // ahsw-lint: allow(D1) wall-clock is the measurand (see file header).
    const auto t0 = std::chrono::steady_clock::now();
    dqp::BatchResult r = proc.execute_batch(batch, opts);
    // ahsw-lint: allow(D1) second wall-clock read closing the measurement.
    const auto t1 = std::chrono::steady_clock::now();
    proc.set_trace(nullptr);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const net::TrafficStats delta =
        f.bed.network().stats().delta_since(before);

    std::vector<std::uint64_t> digests;
    digests.reserve(r.root_spans.size());
    for (obs::SpanId root : r.root_spans) {
      digests.push_back(digest_root(trace, root));
    }

    std::map<std::string, double> extra;
    extra["workers"] = workers;
    extra["wall_ms"] = wall_ms;
    extra["spans"] = static_cast<double>(trace.spans().size());
    TracedBaseline& base = traced_baseline();
    if (workers == 1) {
      base.ready = true;
      base.digests = std::move(digests);
      base.plan_notes.clear();
      for (const dqp::ExecutionReport& rep : r.reports) {
        base.plan_notes.push_back(rep.plan_notes);
      }
      base.delta = delta;
    } else if (base.ready) {
      for (std::size_t i = 0; i < digests.size(); ++i) {
        if (digests[i] != base.digests[i]) die("traced span subtree", i);
        if (r.reports[i].plan_notes != base.plan_notes[i]) {
          die("traced EXPLAIN plan notes", i);
        }
      }
      if (delta.messages != base.delta.messages ||
          delta.bytes != base.delta.bytes ||
          delta.timeouts != base.delta.timeouts) {
        die("traced network delta", 0);
      }
    }
    state.counters["wall_ms"] = wall_ms;
    state.counters["makespan_ms"] = r.makespan;
    benchutil::record_mean_extra_json(state, name, r.reports,
                                      std::move(extra));

    // Converged invariant audit (I1-I6): a traced merge must leave the
    // master overlay exactly as clean as an untraced one.
    check::AuditOptions opt;
    opt.converged = true;
    benchutil::maybe_audit(f.bed.overlay(), name, opt);
  }
}

BENCHMARK(BM_ParallelBatch_Traced)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
